package bench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/session"
)

// The session experiment (SE1): what does the streaming debug-session
// path cost? Full-lifecycle latency (create → SSE end frame), step-command
// round trips, trace-event streaming throughput through the capped ring,
// and concurrent streamed sessions. Reported as BENCH_session.json.

// SessionRow is one scenario measurement.
type SessionRow struct {
	Scenario      string  `json:"scenario"`
	Sessions      int     `json:"sessions,omitempty"` // sessions opened in this scenario
	Ops           int     `json:"ops,omitempty"`      // latency-sampled operations
	WallNS        int64   `json:"wall_ns"`
	P50NS         int64   `json:"p50_ns,omitempty"`
	P95NS         int64   `json:"p95_ns,omitempty"`
	MaxNS         int64   `json:"max_ns,omitempty"`
	Throughput    float64 `json:"throughput"` // ops (or frames) per second
	TraceTotal    int64   `json:"trace_total,omitempty"`
	TraceDropped  int64   `json:"trace_dropped,omitempty"`
	StreamFrames  int64   `json:"stream_frames,omitempty"`
	StreamDropped int64   `json:"stream_dropped,omitempty"`
}

// SessionReport is the BENCH_session.json document.
type SessionReport struct {
	Experiment string        `json:"experiment"`
	HostCores  int           `json:"host_cores"`
	Quick      bool          `json:"quick"`
	Rows       []SessionRow  `json:"rows"`
	Registry   session.Stats `json:"registry"` // server counters after the sweep
}

// SessionExperiment boots an in-process tetrad (real HTTP, loopback
// listener) and measures the streaming-session path end to end.
func SessionExperiment(quick bool, reps int) (*SessionReport, error) {
	if reps < 1 {
		reps = 1
	}
	lifecycleN, stepN, streamIters, concN, concIters := 64, 1000, 20000, 16, 4000
	if quick {
		lifecycleN, stepN, streamIters, concN, concIters = 16, 200, 4000, 8, 1500
	}

	srv := server.New(server.Options{MaxSessions: concN + 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rep := &SessionReport{
		Experiment: "session: streaming debug-session lifecycle, stepping, and trace throughput",
		HostCores:  runtime.GOMAXPROCS(0),
		Quick:      quick,
	}

	runReps := func(f func() (SessionRow, error)) (SessionRow, error) {
		var bestRow SessionRow
		for r := 0; r < reps; r++ {
			row, err := f()
			if err != nil {
				return SessionRow{}, err
			}
			if bestRow.WallNS == 0 || row.WallNS < bestRow.WallNS {
				bestRow = row
			}
		}
		return bestRow, nil
	}

	row, err := runReps(func() (SessionRow, error) { return sessionLifecycle(ts.URL, lifecycleN) })
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, row)

	row, err = runReps(func() (SessionRow, error) { return sessionSteps(ts.URL, stepN) })
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, row)

	row, err = runReps(func() (SessionRow, error) { return sessionStream(ts.URL, streamIters) })
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, row)

	row, err = runReps(func() (SessionRow, error) { return sessionConcurrent(ts.URL, concN, concIters) })
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, row)

	m := srv.Metrics()
	if m.Sessions != nil {
		rep.Registry = *m.Sessions
	}
	return rep, nil
}

// sessionLifecycle opens n sessions one after another (stop_on_entry off,
// tiny program) and times create → terminal SSE frame for each: the
// fixed per-session overhead a debugging frontend pays.
func sessionLifecycle(base string, n int) (SessionRow, error) {
	lat := make([]time.Duration, 0, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		id, err := createBenchSession(base, "def main():\n    print(1 + 1)\n", false, 0)
		if err != nil {
			return SessionRow{}, err
		}
		if _, _, err := drainBenchStream(base, id); err != nil {
			return SessionRow{}, err
		}
		lat = append(lat, time.Since(t0))
		deleteBenchSession(base, id)
	}
	row := latencyRow("lifecycle", lat, time.Since(start))
	row.Sessions = n
	return row, nil
}

// sessionSteps parks one program on entry and times n step-command round
// trips over HTTP: the interactive latency a student feels per step.
func sessionSteps(base string, n int) (SessionRow, error) {
	// Main must survive n statement-steps: 2 statements per iteration.
	src := ArithLoopSource(n + 2)
	id, err := createBenchSession(base, src, true, 0)
	if err != nil {
		return SessionRow{}, err
	}
	defer deleteBenchSession(base, id)
	if _, err := benchCmd(base, id, server.SessionCmdRequest{Cmd: "wait", Thread: 0}); err != nil {
		return SessionRow{}, err
	}
	lat := make([]time.Duration, 0, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		cr, err := benchCmd(base, id, server.SessionCmdRequest{Cmd: "step", Thread: 0})
		if err != nil {
			return SessionRow{}, err
		}
		lat = append(lat, time.Since(t0))
		if cr.Result != "parked" {
			return SessionRow{}, fmt.Errorf("step %d: result %q", i, cr.Result)
		}
	}
	row := latencyRow("step", lat, time.Since(start))
	row.Sessions = 1
	return row, nil
}

// sessionStream runs one busy program to completion while a subscriber
// drains the SSE stream, measuring trace-frame delivery through the
// capped ring (frames per second, ring drops, stream drops).
func sessionStream(base string, iters int) (SessionRow, error) {
	// Park on entry, attach the stream, then release: the subscriber is
	// live for the whole run, so frames measure delivery, not replay.
	id, err := createBenchSession(base, ArithLoopSource(iters), true, 0)
	if err != nil {
		return SessionRow{}, err
	}
	defer deleteBenchSession(base, id)
	resp, err := openBenchStream(base, id)
	if err != nil {
		return SessionRow{}, err
	}
	defer resp.Body.Close()
	start := time.Now()
	if _, err := benchCmd(base, id, server.SessionCmdRequest{Cmd: "continue_all"}); err != nil {
		return SessionRow{}, err
	}
	frames, end, err := drainOpenStream(resp)
	if err != nil {
		return SessionRow{}, err
	}
	wall := time.Since(start)
	row := SessionRow{
		Scenario:     "stream",
		Sessions:     1,
		WallNS:       wall.Nanoseconds(),
		StreamFrames: frames,
		Throughput:   float64(frames) / wall.Seconds(),
	}
	if end != nil {
		row.StreamDropped = end.StreamDropped
	}
	cr, err := benchCmd(base, id, server.SessionCmdRequest{Cmd: "trace"})
	if err != nil {
		return SessionRow{}, err
	}
	if cr.Trace != nil {
		row.TraceTotal = cr.Trace.Total
		row.TraceDropped = cr.Trace.Dropped
	}
	return row, nil
}

// sessionConcurrent streams n busy sessions at once: the many-students
// load the registry cap and idle eviction exist for.
func sessionConcurrent(base string, n, iters int) (SessionRow, error) {
	src := ArithLoopSource(iters)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	var frames int64
	var mu sync.Mutex
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id, err := createBenchSession(base, src, true, 0)
			if err != nil {
				errs <- err
				return
			}
			defer deleteBenchSession(base, id)
			resp, err := openBenchStream(base, id)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if _, err := benchCmd(base, id, server.SessionCmdRequest{Cmd: "continue_all"}); err != nil {
				errs <- err
				return
			}
			fr, _, err := drainOpenStream(resp)
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			frames += fr
			mu.Unlock()
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errs:
		return SessionRow{}, err
	default:
	}
	return SessionRow{
		Scenario:     "concurrent",
		Sessions:     n,
		WallNS:       wall.Nanoseconds(),
		StreamFrames: frames,
		Throughput:   float64(n) / wall.Seconds(),
	}, nil
}

func latencyRow(scenario string, lat []time.Duration, wall time.Duration) SessionRow {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	row := SessionRow{
		Scenario:   scenario,
		Ops:        len(lat),
		WallNS:     wall.Nanoseconds(),
		Throughput: float64(len(lat)) / wall.Seconds(),
	}
	if n := len(lat); n > 0 {
		row.P50NS = lat[n/2].Nanoseconds()
		row.P95NS = lat[n*95/100].Nanoseconds()
		row.MaxNS = lat[n-1].Nanoseconds()
	}
	return row
}

// --- HTTP plumbing ------------------------------------------------------

func createBenchSession(base, src string, stopOnEntry bool, traceCap int) (string, error) {
	req := server.SessionRequest{Source: src, File: "bench.ttr", StopOnEntry: &stopOnEntry, TraceCap: traceCap}
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	resp, err := http.Post(base+"/session", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("POST /session: status %d", resp.StatusCode)
	}
	var sr server.SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return "", err
	}
	return sr.ID, nil
}

func benchCmd(base, id string, req server.SessionCmdRequest) (*server.SessionCmdResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/session/"+id+"/cmd", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cmd %q: status %d", req.Cmd, resp.StatusCode)
	}
	var cr server.SessionCmdResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return nil, err
	}
	return &cr, nil
}

func deleteBenchSession(base, id string) {
	req, err := http.NewRequest(http.MethodDelete, base+"/session/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

// drainBenchStream reads the session's SSE stream to the terminal frame,
// returning the frame count and the decoded end event.
func drainBenchStream(base, id string) (int64, *session.StreamEvent, error) {
	resp, err := openBenchStream(base, id)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	return drainOpenStream(resp)
}

func openBenchStream(base, id string) (*http.Response, error) {
	resp, err := http.Get(base + "/session/" + id + "/events")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("GET events: status %d", resp.StatusCode)
	}
	return resp, nil
}

func drainOpenStream(resp *http.Response) (int64, *session.StreamEvent, error) {
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var frames int64
	var event string
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && event != "":
			frames++
			if event == session.EventEnd {
				var end session.StreamEvent
				if err := json.Unmarshal(data, &end); err != nil {
					return frames, nil, err
				}
				return frames, &end, nil
			}
			event, data = "", nil
		}
	}
	return frames, nil, fmt.Errorf("stream ended without a terminal frame after %d frames", frames)
}

// WriteSessionJSON writes the report for committing as BENCH_session.json.
func WriteSessionJSON(path string, rep *SessionReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatSessionTable renders the report for the terminal.
func FormatSessionTable(rep *SessionReport) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "  %d host cores; registry: %d created, %d evicted, %d rejected\n",
		rep.HostCores, rep.Registry.Created, rep.Registry.Evicted, rep.Registry.Rejected)
	fmt.Fprintf(&b, "  %-11s %-9s %-7s %12s %12s %12s %12s\n",
		"scenario", "sessions", "ops", "thru/s", "p50", "p95", "max")
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "  %-11s %-9d %-7d %12.1f %12s %12s %12s\n",
			r.Scenario, r.Sessions, r.Ops, r.Throughput,
			time.Duration(r.P50NS).Round(10*time.Microsecond),
			time.Duration(r.P95NS).Round(10*time.Microsecond),
			time.Duration(r.MaxNS).Round(10*time.Microsecond))
		if r.StreamFrames > 0 {
			fmt.Fprintf(&b, "  %-11s   frames=%d stream-dropped=%d trace-total=%d trace-dropped=%d\n",
				"", r.StreamFrames, r.StreamDropped, r.TraceTotal, r.TraceDropped)
		}
	}
	return b.String()
}
