package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/sem"
	"repro/internal/value"
)

// The semantics-core experiment: what does routing every operator through
// internal/sem cost on the hot binary-op path? Before the sem refactor
// each backend inlined its own arithmetic switch; afterwards the VM (and
// interpreter) make a function call into the shared kernel per operation.
// This experiment measures that indirection two ways:
//
//   - kernel level: ns/op for an inlined arithmetic switch (the shape the
//     VM used to contain, reproduced here as the measurement baseline)
//     vs the same work through sem.Arith;
//   - program level: ns per loop iteration for the arithmetic-loop
//     workload on the VM, where each iteration executes several sem-routed
//     operators, at O0 and O2.
//
// The acceptance bar is <5% end-to-end overhead; results are committed as
// BENCH_sem.json alongside the code they measure.

// SemKernelRow compares one operator's inlined baseline against the sem
// kernel call.
type SemKernelRow struct {
	Op          string  `json:"op"`
	InlineNSOp  float64 `json:"inline_ns_op"` // inlined switch (pre-refactor shape)
	SemNSOp     float64 `json:"sem_ns_op"`    // through sem.Arith / sem.Compare
	OverheadPct float64 `json:"overhead_pct"` // (sem - inline) / inline * 100
}

// SemVMRow is the end-to-end view: the arithmetic loop on the sem-routed
// VM, normalized to ns per loop iteration.
type SemVMRow struct {
	Workload string  `json:"workload"`
	Level    int     `json:"level"`
	Iters    int     `json:"iters"`
	WallNS   int64   `json:"wall_ns"`
	NSPerIt  float64 `json:"ns_per_iter"`
}

// SemReport is the BENCH_sem.json document.
type SemReport struct {
	Experiment string         `json:"experiment"`
	HostCores  int            `json:"host_cores"`
	Quick      bool           `json:"quick"`
	Kernel     []SemKernelRow `json:"kernel"`
	VM         []SemVMRow     `json:"vm"`
}

// inlineArith reproduces the arithmetic switch the VM contained before
// the sem refactor, as the baseline the kernel comparison measures
// against. It exists only inside this experiment; the executable
// semantics live in internal/sem (the guard test does not scan bench).
func inlineArith(op sem.Op, l, r value.Value) (value.Value, bool) {
	if l.K == value.Int && r.K == value.Int {
		a, b := l.Int(), r.Int()
		switch op {
		case sem.Add:
			return value.NewInt(a + b), true
		case sem.Sub:
			return value.NewInt(a - b), true
		case sem.Mul:
			return value.NewInt(a * b), true
		case sem.Div:
			if b == 0 {
				return value.Value{}, false
			}
			return value.NewInt(a / b), true
		default:
			if b == 0 {
				return value.Value{}, false
			}
			return value.NewInt(a % b), true
		}
	}
	a, b := l.AsReal(), r.AsReal()
	switch op {
	case sem.Add:
		return value.NewReal(a + b), true
	case sem.Sub:
		return value.NewReal(a - b), true
	case sem.Mul:
		return value.NewReal(a * b), true
	case sem.Div:
		if b == 0 {
			return value.Value{}, false
		}
		return value.NewReal(a / b), true
	default:
		return value.NewReal(a), true
	}
}

// semBinKernels are the operator/operand shapes measured at kernel level:
// the int and real fast paths of the hottest operators.
var semBinKernels = []struct {
	name string
	op   sem.Op
	l, r value.Value
}{
	{"add_int", sem.Add, value.NewInt(7), value.NewInt(3)},
	{"mul_int", sem.Mul, value.NewInt(7), value.NewInt(3)},
	{"mod_int", sem.Mod, value.NewInt(1234567), value.NewInt(1000003)},
	{"add_real", sem.Add, value.NewReal(1.5), value.NewReal(2.25)},
	{"div_real", sem.Div, value.NewReal(7.5), value.NewReal(2.5)},
}

// sink defeats dead-code elimination of the measured loops.
var sink value.Value

// measureNSOp times f over iters calls, returning ns per call (best of 3).
func measureNSOp(iters int, f func()) float64 {
	best := time.Duration(1<<63 - 1)
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(iters)
}

// Sem runs the semantics-core overhead experiment, returning the report
// for BENCH_sem.json.
func Sem(quick bool, reps int) (*SemReport, error) {
	if reps < 1 {
		reps = 1
	}
	kiters := 20_000_000
	loopIters := 2_000_000
	if quick {
		kiters = 2_000_000
		loopIters = 100_000
	}

	rep := &SemReport{
		Experiment: "sem",
		HostCores:  runtime.GOMAXPROCS(0),
		Quick:      quick,
	}

	// Kernel level: inlined switch vs sem.Arith on identical operands.
	for _, k := range semBinKernels {
		op, l, r := k.op, k.l, k.r
		inline := measureNSOp(kiters, func() {
			for i := 0; i < kiters; i++ {
				v, _ := inlineArith(op, l, r)
				sink = v
			}
		})
		throughSem := measureNSOp(kiters, func() {
			for i := 0; i < kiters; i++ {
				v, _ := sem.Arith(op, l, r)
				sink = v
			}
		})
		row := SemKernelRow{Op: k.name, InlineNSOp: inline, SemNSOp: throughSem}
		if inline > 0 {
			row.OverheadPct = (throughSem - inline) / inline * 100
		}
		rep.Kernel = append(rep.Kernel, row)
	}

	// Program level: the arithmetic loop on the VM. Every iteration runs
	// several sem-routed operators (compare, add, mul, mod), so ns/iter is
	// the end-to-end cost of the sem-routed dispatch path.
	src := ArithLoopSource(loopIters)
	prog, err := core.Compile("sembench.ttr", src)
	if err != nil {
		return nil, err
	}
	for _, level := range []int{0, 2} {
		bc, err := core.CompileBytecodeOpt(prog, level)
		if err != nil {
			return nil, err
		}
		best := time.Duration(1<<63 - 1)
		for r := 0; r < reps; r++ {
			var out bytes.Buffer
			m := core.NewVM(bc, core.Config{Stdout: &out})
			start := time.Now()
			if err := m.Run(); err != nil {
				return nil, err
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		rep.VM = append(rep.VM, SemVMRow{
			Workload: "arithloop",
			Level:    level,
			Iters:    loopIters,
			WallNS:   best.Nanoseconds(),
			NSPerIt:  float64(best.Nanoseconds()) / float64(loopIters),
		})
	}
	return rep, nil
}

// PrintSemReport renders the report as the console table tetrabench shows.
func PrintSemReport(rep *SemReport) {
	fmt.Println("semantics-core overhead (inlined switch vs sem kernel call):")
	fmt.Printf("  %-10s %12s %12s %10s\n", "op", "inline ns", "sem ns", "overhead")
	for _, k := range rep.Kernel {
		fmt.Printf("  %-10s %12.2f %12.2f %9.1f%%\n", k.Op, k.InlineNSOp, k.SemNSOp, k.OverheadPct)
	}
	fmt.Println("\nVM arithmetic loop (every operator routed through sem):")
	for _, v := range rep.VM {
		fmt.Printf("  O%d: %8.1f ns/iter (%d iters, %.1f ms total)\n",
			v.Level, v.NSPerIt, v.Iters, float64(v.WallNS)/1e6)
	}
}

// WriteSemJSON writes the report, pretty-printed for diffable commits.
func WriteSemJSON(path string, rep *SemReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
