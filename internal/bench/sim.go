package bench

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/simsched"
)

// DefaultSpawnCost is the thread-creation overhead charged per spawned
// worker, in work units. One work unit is one interpreted AST node
// (roughly tens of nanoseconds); goroutine creation plus the forked frame
// costs on the order of a few microseconds, i.e. a few dozen units.
const DefaultSpawnCost = 50

// SimRow pairs a worker count with its simulated timing.
type SimRow = simsched.Row

// SimSpeedup reproduces the paper's speedup experiment on a virtual
// multicore machine: for each worker count it runs the instrumented
// workload (counting per-thread work), then schedules that decomposition
// on the same number of virtual cores. See internal/simsched for the
// model and its fidelity notes.
func SimSpeedup(name string, mkSource func(workers int) string, workerCounts []int) ([]SimRow, error) {
	profiles := make([]simsched.Profile, 0, len(workerCounts))
	for _, w := range workerCounts {
		prog, err := core.Compile(fmt.Sprintf("%s_w%d.ttr", name, w), mkSource(w))
		if err != nil {
			return nil, err
		}
		var out bytes.Buffer
		tw, err := core.RunProfiled(prog, core.Config{Stdout: &out})
		if err != nil {
			return nil, err
		}
		p := simsched.Profile{SpawnCost: DefaultSpawnCost}
		for _, t := range tw {
			if t.ID == 0 {
				p.Serial += t.Work
			} else {
				p.Workers = append(p.Workers, t.Work)
			}
		}
		profiles = append(profiles, p)
	}
	return simsched.Curve(workerCounts, profiles), nil
}

// FormatSimTable renders a simulated speedup table.
func FormatSimTable(title string, rows []SimRow) string {
	return simsched.FormatCurve(title, rows)
}
