package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/router"
	"repro/internal/server"
)

// The cluster experiment (CL1): does cache-affinity routing actually buy
// anything over random load balancing? An in-process cluster (router +
// N tetrads on loopback) is driven with zipfian program popularity over
// a corpus deliberately larger than one node's compile cache: under
// random routing every node sees the whole corpus and thrashes its
// cache; under affinity routing each node sees a 1/N shard that fits.
// Two failure phases — a node SIGKILLed mid-load and a node draining
// mid-load — measure what clients observe. Reported as
// BENCH_cluster.json.

// clusterPrograms is the corpus size; clusterCacheEntries caps each
// node's compile cache. 64 programs against a 32-entry cache means the
// corpus fits nowhere under random routing but every affinity shard fits
// from N=2 up.
const (
	clusterPrograms     = 64
	clusterCacheEntries = 32
	clusterZipfS        = 1.1
	clusterClients      = 16
)

// ClusterRow is one (policy, node count) measurement.
type ClusterRow struct {
	Policy          string    `json:"policy"`
	Nodes           int       `json:"nodes"`
	Requests        int       `json:"requests"` // completed 200s
	Rejected        int       `json:"rejected"` // non-200 well-formed replies
	WallNS          int64     `json:"wall_ns"`
	Throughput      float64   `json:"throughput"` // requests per second
	P50LatencyNS    int64     `json:"p50_latency_ns"`
	P99LatencyNS    int64     `json:"p99_latency_ns"`
	AggregateHits   uint64    `json:"aggregate_cache_hits"`
	AggregateMisses uint64    `json:"aggregate_cache_misses"`
	AggregateHit    float64   `json:"aggregate_cache_hit_rate"`
	PerNodeHit      []float64 `json:"per_node_cache_hit_rate"`
	PerNodeRequests []int64   `json:"per_node_requests"`
}

// ClusterPhase is one failure-injection phase at N=4 under affinity
// routing: every client-visible anomaly is counted, and the contract is
// that Malformed, TransportErrors and LostToDrain stay zero.
type ClusterPhase struct {
	Name            string `json:"name"`
	Requests        int    `json:"requests"`
	OK              int    `json:"ok"`
	Rejected        int    `json:"rejected"`         // well-formed non-200 JSON errors
	Malformed       int    `json:"malformed"`        // replies that failed to parse as the API shape
	TransportErrors int    `json:"transport_errors"` // client-visible connection failures
	LostToDrain     int    `json:"lost_to_drain"`    // replies rejected by a backend that had announced drain
	RouterRetries   int64  `json:"router_retries"`
	RouterSpillover int64  `json:"router_spillovers"`
	Membership      int64  `json:"membership_changes"`
}

// ClusterReport is the BENCH_cluster.json document.
type ClusterReport struct {
	Experiment   string         `json:"experiment"`
	HostCores    int            `json:"host_cores"`
	Quick        bool           `json:"quick"`
	Programs     int            `json:"programs"`
	CacheEntries int            `json:"cache_entries_per_node"`
	ZipfS        float64        `json:"zipf_s"`
	Clients      int            `json:"clients"`
	Rows         []ClusterRow   `json:"rows"`
	Phases       []ClusterPhase `json:"phases"`
	// Headline comparison at N=4: the numbers the affinity design stands
	// or falls on.
	AffinityN4HitRate    float64 `json:"affinity_n4_hit_rate"`
	RandomN4HitRate      float64 `json:"random_n4_hit_rate"`
	AffinityN4Throughput float64 `json:"affinity_n4_throughput"`
	RandomN4Throughput   float64 `json:"random_n4_throughput"`
}

// clusterProgramSource generates program idx of the corpus: a long
// straight-line body (compilation cost scales with it) with a trivial
// runtime, so a compile-cache miss dominates a warm request and routing
// policy is what the measurement sees.
func clusterProgramSource(idx, stmts int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "def main():\n    s = %d\n", idx)
	for i := 0; i < stmts; i++ {
		fmt.Fprintf(&b, "    s = (s * 31 + %d) %% 1000003\n", idx*1000+i)
	}
	b.WriteString("    print(s)\n")
	return b.String()
}

// clusterCluster is one booted in-process cluster.
type clusterCluster struct {
	rt      *router.Router
	front   *httptest.Server
	servers []*server.Server
	tss     []*httptest.Server
}

func bootCluster(n int, policy string, announce time.Duration) (*clusterCluster, error) {
	c := &clusterCluster{}
	var backends []router.Backend
	for i := 0; i < n; i++ {
		srv := server.New(server.Options{
			CacheEntries: clusterCacheEntries,
			MaxInFlight:  8,
			MaxQueue:     1024,
			QueueTimeout: 30 * time.Second,
			DrainGrace:   5 * time.Second,
			// The announce window is what makes mid-load drain lossless:
			// readiness flips 503 while admissions stay open, and the
			// router (25ms probes) stops sending long before they close.
			DrainAnnounce: announce,
		})
		ts := httptest.NewServer(srv)
		c.servers = append(c.servers, srv)
		c.tss = append(c.tss, ts)
		backends = append(backends, router.Backend{ID: fmt.Sprintf("n%d", i), URL: ts.URL})
	}
	rt, err := router.New(router.Options{
		Backends:      backends,
		Policy:        policy,
		ProbeInterval: 25 * time.Millisecond,
	})
	if err != nil {
		c.close()
		return nil, err
	}
	c.rt = rt
	c.front = httptest.NewServer(rt)
	deadline := time.Now().Add(10 * time.Second)
	for rt.Ring().Len() < n {
		if time.Now().After(deadline) {
			c.close()
			return nil, fmt.Errorf("cluster: ring never reached %d members", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return c, nil
}

func (c *clusterCluster) close() {
	if c.rt != nil {
		_ = c.rt.Close()
	}
	if c.front != nil {
		c.front.Close()
	}
	for i, srv := range c.servers {
		_ = srv.Drain(nil)
		c.tss[i].Close()
	}
}

// zipfSequence precomputes a deterministic program-index stream shared
// by every measurement point, so affinity and random race on identical
// workloads.
func zipfSequence(total int) []int {
	rng := rand.New(rand.NewSource(1))
	z := rand.NewZipf(rng, clusterZipfS, 1, clusterPrograms-1)
	seq := make([]int, total)
	for i := range seq {
		seq[i] = int(z.Uint64())
	}
	return seq
}

// ClusterExperiment measures affinity vs random routing at N=1,2,4 and
// runs the node-kill and drain-mid-load phases.
func ClusterExperiment(quick bool, reps int) (*ClusterReport, error) {
	perPoint := 4000
	phaseTotal := 1200
	stmts := 150
	if quick {
		perPoint = 800
		phaseTotal = 400
	}
	if reps < 1 {
		reps = 1
	}
	rep := &ClusterReport{
		Experiment:   "cluster: cache-affinity vs random routing across tetrad replicas (zipfian load)",
		HostCores:    runtime.GOMAXPROCS(0),
		Quick:        quick,
		Programs:     clusterPrograms,
		CacheEntries: clusterCacheEntries,
		ZipfS:        clusterZipfS,
		Clients:      clusterClients,
	}

	bodies := make([][]byte, clusterPrograms)
	for i := range bodies {
		body, err := json.Marshal(server.RunRequest{
			Source:  clusterProgramSource(i, stmts),
			File:    fmt.Sprintf("cluster%02d.ttr", i),
			Backend: server.BackendVM,
		})
		if err != nil {
			return nil, err
		}
		bodies[i] = body
	}
	seq := zipfSequence(perPoint)
	warm := zipfSequence(perPoint / 4)

	for _, policy := range []string{router.PolicyAffinity, router.PolicyRandom} {
		for _, n := range []int{1, 2, 4} {
			best := ClusterRow{}
			for r := 0; r < reps; r++ {
				row, err := clusterPoint(policy, n, bodies, warm, seq)
				if err != nil {
					return nil, err
				}
				if best.WallNS == 0 || row.WallNS < best.WallNS {
					best = row
				}
			}
			rep.Rows = append(rep.Rows, best)
			if best.Nodes == 4 {
				if best.Policy == router.PolicyAffinity {
					rep.AffinityN4HitRate = best.AggregateHit
					rep.AffinityN4Throughput = best.Throughput
				} else {
					rep.RandomN4HitRate = best.AggregateHit
					rep.RandomN4Throughput = best.Throughput
				}
			}
		}
	}

	kill, err := clusterFailurePhase("node-kill", bodies, phaseTotal, func(c *clusterCluster) {
		// SIGKILL equivalent for an in-process node: the listener dies and
		// every open connection is severed mid-flight, no announcement.
		c.tss[1].CloseClientConnections()
		c.tss[1].Close()
	})
	if err != nil {
		return nil, err
	}
	rep.Phases = append(rep.Phases, *kill)

	drain, err := clusterFailurePhase("drain-mid-load", bodies, phaseTotal, func(c *clusterCluster) {
		go c.servers[2].Drain(nil)
	})
	if err != nil {
		return nil, err
	}
	rep.Phases = append(rep.Phases, *drain)
	return rep, nil
}

// clusterPoint boots a fresh cluster, warms it with a quarter-length
// zipf stream, then measures the shared measurement stream.
func clusterPoint(policy string, n int, bodies [][]byte, warm, seq []int) (ClusterRow, error) {
	c, err := bootCluster(n, policy, 0)
	if err != nil {
		return ClusterRow{}, err
	}
	defer c.close()

	if err := clusterDrive(c.front.URL, bodies, warm, nil); err != nil {
		return ClusterRow{}, err
	}
	// Snapshot cache counters so the row reports the measured window only.
	type cacheBase struct{ hits, misses uint64 }
	base := make([]cacheBase, n)
	reqBase := make([]int64, n)
	for i, srv := range c.servers {
		m := srv.Metrics()
		base[i] = cacheBase{m.Cache.Hits, m.Cache.Misses}
		reqBase[i] = m.Requests
	}

	latencies := make([]time.Duration, len(seq))
	var rejected atomic.Int64
	start := time.Now()
	if err := clusterDrive(c.front.URL, bodies, seq, func(i, status int, d time.Duration) {
		latencies[i] = d
		if status != http.StatusOK {
			rejected.Add(1)
		}
	}); err != nil {
		return ClusterRow{}, err
	}
	wall := time.Since(start)

	row := ClusterRow{
		Policy:     policy,
		Nodes:      n,
		Requests:   len(seq) - int(rejected.Load()),
		Rejected:   int(rejected.Load()),
		WallNS:     wall.Nanoseconds(),
		Throughput: float64(len(seq)) / wall.Seconds(),
	}
	for i, srv := range c.servers {
		m := srv.Metrics()
		hits := m.Cache.Hits - base[i].hits
		misses := m.Cache.Misses - base[i].misses
		row.AggregateHits += hits
		row.AggregateMisses += misses
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}
		row.PerNodeHit = append(row.PerNodeHit, rate)
		row.PerNodeRequests = append(row.PerNodeRequests, m.Requests-reqBase[i])
	}
	if t := row.AggregateHits + row.AggregateMisses; t > 0 {
		row.AggregateHit = float64(row.AggregateHits) / float64(t)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	row.P50LatencyNS = latencies[len(latencies)/2].Nanoseconds()
	row.P99LatencyNS = latencies[len(latencies)*99/100].Nanoseconds()
	return row, nil
}

// clusterDrive replays a program-index stream through the front door
// with clusterClients concurrent clients. observe (when set) receives
// (stream index, HTTP status, latency) per request; transport errors are
// returned.
func clusterDrive(url string, bodies [][]byte, seq []int, observe func(i, status int, d time.Duration)) error {
	var next atomic.Int64
	errCh := make(chan error, clusterClients)
	var wg sync.WaitGroup
	for c := 0; c < clusterClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(seq) {
					return
				}
				startReq := time.Now()
				resp, err := http.Post(url+"/run", "application/json", bytes.NewReader(bodies[seq[i]]))
				if err != nil {
					errCh <- err
					return
				}
				var rr server.RunResponse
				dec := json.NewDecoder(resp.Body)
				if resp.StatusCode == http.StatusOK {
					if err := dec.Decode(&rr); err != nil {
						resp.Body.Close()
						errCh <- fmt.Errorf("bad 200 body: %w", err)
						return
					}
				}
				resp.Body.Close()
				if observe != nil {
					observe(i, resp.StatusCode, time.Since(startReq))
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// clusterFailurePhase drives the zipf stream at N=4 under affinity
// routing and triggers the failure at 40% completion, tallying what
// clients observe.
func clusterFailurePhase(name string, bodies [][]byte, total int, failure func(*clusterCluster)) (*ClusterPhase, error) {
	c, err := bootCluster(4, router.PolicyAffinity, 750*time.Millisecond)
	if err != nil {
		return nil, err
	}
	defer c.close()
	seq := zipfSequence(total)
	if err := clusterDrive(c.front.URL, bodies, seq[:total/4], nil); err != nil {
		return nil, err
	}

	ph := &ClusterPhase{Name: name, Requests: total}
	var done, ok, rejected, malformed, transport, lost atomic.Int64
	fired := make(chan struct{})
	go func() {
		for done.Load() < int64(total*40/100) {
			time.Sleep(2 * time.Millisecond)
		}
		failure(c)
		close(fired)
	}()

	var next atomic.Int64
	var wg sync.WaitGroup
	for cl := 0; cl < clusterClients; cl++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 60 * time.Second}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(seq) {
					return
				}
				resp, err := client.Post(c.front.URL+"/run", "application/json", bytes.NewReader(bodies[seq[i]]))
				if err != nil {
					transport.Add(1)
					done.Add(1)
					continue
				}
				body := new(bytes.Buffer)
				if _, err := body.ReadFrom(resp.Body); err != nil {
					transport.Add(1)
					resp.Body.Close()
					done.Add(1)
					continue
				}
				resp.Body.Close()
				done.Add(1)
				if resp.StatusCode == http.StatusOK {
					var rr server.RunResponse
					if json.Unmarshal(body.Bytes(), &rr) != nil || !rr.OK {
						malformed.Add(1)
					} else {
						ok.Add(1)
					}
					continue
				}
				var er server.ErrorResponse
				if json.Unmarshal(body.Bytes(), &er) != nil || er.Code != resp.StatusCode || er.Error == "" {
					malformed.Add(1)
					continue
				}
				rejected.Add(1)
				if strings.Contains(er.Error, "draining") && resp.Header.Get("X-Tetra-Backend") != "" {
					// A backend that announced its drain still rejected us:
					// the router failed the drain-announce contract.
					lost.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	<-fired

	m := c.rt.Metrics()
	ph.OK = int(ok.Load())
	ph.Rejected = int(rejected.Load())
	ph.Malformed = int(malformed.Load())
	ph.TransportErrors = int(transport.Load())
	ph.LostToDrain = int(lost.Load())
	ph.RouterRetries = m.Retries
	ph.RouterSpillover = m.Spillovers
	ph.Membership = m.Membership
	return ph, nil
}

// WriteClusterJSON writes the report for committing as BENCH_cluster.json.
func WriteClusterJSON(path string, rep *ClusterReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatClusterTable renders the report for the terminal.
func FormatClusterTable(rep *ClusterReport) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "  %d programs, %d cache entries/node, zipf s=%.1f, %d clients, %d host cores\n",
		rep.Programs, rep.CacheEntries, rep.ZipfS, rep.Clients, rep.HostCores)
	fmt.Fprintf(&b, "  %-9s %-6s %10s %12s %12s %10s  %s\n",
		"policy", "nodes", "req/s", "p50", "p99", "hit rate", "per-node hit rate")
	for _, r := range rep.Rows {
		per := make([]string, len(r.PerNodeHit))
		for i, h := range r.PerNodeHit {
			per[i] = fmt.Sprintf("%.2f", h)
		}
		fmt.Fprintf(&b, "  %-9s %-6d %10.1f %12s %12s %10.3f  [%s]\n",
			r.Policy, r.Nodes, r.Throughput,
			time.Duration(r.P50LatencyNS).Round(10*time.Microsecond),
			time.Duration(r.P99LatencyNS).Round(10*time.Microsecond),
			r.AggregateHit, strings.Join(per, " "))
	}
	for _, p := range rep.Phases {
		fmt.Fprintf(&b, "  phase %-14s %d req: %d ok, %d rejected, %d malformed, %d transport errors, %d lost to drain (retries=%d spillovers=%d)\n",
			p.Name, p.Requests, p.OK, p.Rejected, p.Malformed, p.TransportErrors, p.LostToDrain,
			p.RouterRetries, p.RouterSpillover)
	}
	return b.String()
}
