package bench

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/router"
	"repro/internal/server"
)

func clusterTestBodies(t *testing.T) [][]byte {
	t.Helper()
	bodies := make([][]byte, clusterPrograms)
	for i := range bodies {
		body, err := json.Marshal(server.RunRequest{
			Source:  clusterProgramSource(i, 20),
			File:    fmt.Sprintf("cluster%02d.ttr", i),
			Backend: server.BackendVM,
		})
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = body
	}
	return bodies
}

// TestClusterPointShape drives one scaled-down measurement point per
// policy and checks the row invariants the full experiment relies on.
func TestClusterPointShape(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 2-node cluster; skipped in -short")
	}
	bodies := clusterTestBodies(t)
	warm := zipfSequence(40)
	seq := zipfSequence(160)
	for _, policy := range []string{router.PolicyAffinity, router.PolicyRandom} {
		row, err := clusterPoint(policy, 2, bodies, warm, seq)
		if err != nil {
			t.Fatal(err)
		}
		if row.Policy != policy || row.Nodes != 2 {
			t.Errorf("row labels %+v", row)
		}
		if row.Requests+row.Rejected != len(seq) {
			t.Errorf("%s: requests %d + rejected %d != %d", policy, row.Requests, row.Rejected, len(seq))
		}
		if len(row.PerNodeHit) != 2 || len(row.PerNodeRequests) != 2 {
			t.Errorf("%s: per-node arrays sized %d/%d, want 2", policy, len(row.PerNodeHit), len(row.PerNodeRequests))
		}
		if row.AggregateHit < 0 || row.AggregateHit > 1 {
			t.Errorf("%s: hit rate %f out of range", policy, row.AggregateHit)
		}
		if row.Throughput <= 0 || row.WallNS <= 0 || row.P50LatencyNS <= 0 || row.P99LatencyNS < row.P50LatencyNS {
			t.Errorf("%s: implausible timing %+v", policy, row)
		}
		var total int64
		for _, n := range row.PerNodeRequests {
			total += n
		}
		if total != int64(len(seq)) {
			t.Errorf("%s: per-node requests sum to %d, want %d", policy, total, len(seq))
		}
	}
}

// TestClusterFailurePhaseContracts runs scaled-down kill and drain
// phases and pins the zero-anomaly contracts the committed
// BENCH_cluster.json claims.
func TestClusterFailurePhaseContracts(t *testing.T) {
	if testing.Short() {
		t.Skip("boots 4-node clusters; skipped in -short")
	}
	bodies := clusterTestBodies(t)
	kill, err := clusterFailurePhase("node-kill", bodies, 200, func(c *clusterCluster) {
		c.tss[1].CloseClientConnections()
		c.tss[1].Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	drain, err := clusterFailurePhase("drain-mid-load", bodies, 200, func(c *clusterCluster) {
		go c.servers[2].Drain(nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range []*ClusterPhase{kill, drain} {
		if ph.OK+ph.Rejected+ph.Malformed+ph.TransportErrors != ph.Requests {
			t.Errorf("%s: replies don't account for all requests: %+v", ph.Name, ph)
		}
		if ph.Malformed != 0 {
			t.Errorf("%s: %d malformed replies", ph.Name, ph.Malformed)
		}
		if ph.TransportErrors != 0 {
			t.Errorf("%s: %d client-visible transport errors", ph.Name, ph.TransportErrors)
		}
		if ph.LostToDrain != 0 {
			t.Errorf("%s: %d requests lost to a draining node", ph.Name, ph.LostToDrain)
		}
	}
}
