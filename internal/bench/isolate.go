package bench

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/worker"
)

// The isolate experiment (ISO1): what does crash isolation cost, and what
// does it buy? The same warm-cache workload is measured on the in-process
// tier and on the supervised worker-pool tier, then the pool tier is
// re-measured under fault injection (a fraction of worker attempts
// SIGKILLed mid-run) to show the service absorbing crashes that would
// have taken down the in-process server. Reported as BENCH_isolate.json.
//
// The benchmark binary serves as its own worker: the pool re-execs it
// with TETRAD_WORKER=1 and worker.ExitIfWorker diverts the child into
// the worker loop before main's flag parsing runs.

// IsolateRow is one (tier, backend) measurement.
type IsolateRow struct {
	Tier         string  `json:"tier"`    // "inproc", "worker", "worker+chaos"
	Backend      string  `json:"backend"` // interp or vm
	Requests     int     `json:"requests"`
	Throughput   float64 `json:"throughput"` // requests per second
	P50LatencyNS int64   `json:"p50_latency_ns"`
	P95LatencyNS int64   `json:"p95_latency_ns"`
	// OverheadMeanNS is the mean supervised-round-trip overhead (wall
	// minus worker-reported work) from the server's isolation histogram;
	// zero on the inproc tier.
	OverheadMeanNS int64 `json:"overhead_mean_ns,omitempty"`
	// Crashes/Retries report the supervision work on the chaos row.
	Crashes int64 `json:"crashes,omitempty"`
	Retries int64 `json:"retries,omitempty"`
}

// IsolateReport is the BENCH_isolate.json document.
type IsolateReport struct {
	Experiment string       `json:"experiment"`
	HostCores  int          `json:"host_cores"`
	Quick      bool         `json:"quick"`
	Workload   string       `json:"workload"`
	PoolSize   int          `json:"pool_size"`
	ChaosSpec  string       `json:"chaos_spec"`
	Rows       []IsolateRow `json:"rows"`
}

// IsolateExperiment measures the worker-isolation boundary cost and the
// supervised tier's behavior under injected worker crashes.
func IsolateExperiment(quick bool, reps int) (*IsolateReport, error) {
	perPoint := 400
	if quick {
		perPoint = 120
	}
	if reps < 1 {
		reps = 1
	}
	iters := 2000
	if quick {
		iters = 500
	}
	src := ArithLoopSource(iters)
	const inflight = 4
	const chaosSpec = "worker-exit=0.1"

	rep := &IsolateReport{
		Experiment: "isolate: in-process vs supervised worker execution, and worker tier under injected crashes",
		HostCores:  runtime.GOMAXPROCS(0),
		Quick:      quick,
		Workload:   fmt.Sprintf("arith_loop(%d)", iters),
		PoolSize:   inflight,
		ChaosSpec:  chaosSpec,
	}

	tiers := []struct {
		name string
		opts server.Options
	}{
		{"inproc", server.Options{
			Isolation:    server.IsolationOff,
			MaxInFlight:  inflight,
			MaxQueue:     4 * inflight,
			QueueTimeout: 30 * time.Second,
		}},
		{"worker", server.Options{
			Isolation:    server.IsolationPool,
			MaxInFlight:  inflight,
			MaxQueue:     4 * inflight,
			QueueTimeout: 30 * time.Second,
		}},
		{"worker+chaos", server.Options{
			Isolation:    server.IsolationPool,
			MaxInFlight:  inflight,
			MaxQueue:     4 * inflight,
			QueueTimeout: 30 * time.Second,
			WorkerEnv:    []string{fault.EnvVar + "=" + chaosSpec},
			// The chaos row must never 422 a healthy program just
			// because the dice crashed its workers.
			Quarantine: worker.QuarantinePolicy{Threshold: -1},
			Retry:      worker.RetryPolicy{MaxAttempts: 6},
		}},
	}

	for _, tier := range tiers {
		for _, backend := range []string{server.BackendInterp, server.BackendVM} {
			row, err := isolateOnePoint(tier.name, backend, tier.opts, src, inflight, perPoint, reps)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", tier.name, backend, err)
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

func isolateOnePoint(tier, backend string, opts server.Options, src string, conc, total, reps int) (IsolateRow, error) {
	srv := server.New(opts)
	ts := httptest.NewServer(srv)
	defer func() {
		srv.Drain(nil)
		ts.Close()
	}()
	body, err := json.Marshal(server.RunRequest{Source: src, File: "bench.ttr", Backend: backend})
	if err != nil {
		return IsolateRow{}, err
	}
	if opts.Isolation == server.IsolationPool {
		// Give the pre-forked pool a moment to come up so the first
		// requests do not measure the in-process fallback.
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if st := srv.Pool().Stats(); st.Idle > 0 {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// Warm the caches (every worker compiles once; run a few extra).
	for i := 0; i < conc+2; i++ {
		if _, err := postOnce(ts.URL, body); err != nil {
			return IsolateRow{}, err
		}
	}

	best := IsolateRow{Tier: tier, Backend: backend}
	for r := 0; r < reps; r++ {
		sr, err := serveBatch(ts.URL, body, conc, total)
		if err != nil {
			return IsolateRow{}, err
		}
		if best.Requests == 0 || sr.Throughput > best.Throughput {
			best.Requests = sr.Requests
			best.Throughput = sr.Throughput
			best.P50LatencyNS = sr.P50LatencyNS
			best.P95LatencyNS = sr.P95LatencyNS
		}
	}

	m := srv.Metrics()
	if h, ok := m.Latency["isolation_overhead"]; ok && h.Count > 0 {
		best.OverheadMeanNS = int64(h.MeanMS * float64(time.Millisecond))
	}
	if m.Worker != nil {
		best.Crashes = m.Worker.Crashes
		best.Retries = m.Worker.Retries
	}
	return best, nil
}

// WriteIsolateJSON writes the report for committing as BENCH_isolate.json.
func WriteIsolateJSON(path string, rep *IsolateReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatIsolateTable renders the report for the terminal.
func FormatIsolateTable(rep *IsolateReport) string {
	var b []byte
	buf := func(format string, args ...any) { b = append(b, fmt.Sprintf(format, args...)...) }
	buf("  workload %s, pool size %d, chaos %s, %d host cores\n",
		rep.Workload, rep.PoolSize, rep.ChaosSpec, rep.HostCores)
	buf("  %-13s %-8s %10s %12s %12s %12s %8s %8s\n",
		"tier", "backend", "req/s", "p50", "p95", "overhead", "crashes", "retries")
	for _, r := range rep.Rows {
		over := "-"
		if r.OverheadMeanNS > 0 {
			over = time.Duration(r.OverheadMeanNS).Round(10 * time.Microsecond).String()
		}
		buf("  %-13s %-8s %10.1f %12s %12s %12s %8d %8d\n",
			r.Tier, r.Backend, r.Throughput,
			time.Duration(r.P50LatencyNS).Round(10*time.Microsecond),
			time.Duration(r.P95LatencyNS).Round(10*time.Microsecond),
			over, r.Crashes, r.Retries)
	}
	return string(b)
}
