package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"repro/internal/server"
)

// The tiered experiment (T1): where does the native promotion tier pay
// off? The same loop-bound workloads are served by tetrad on all three
// execution tiers — interpreter, warm bytecode VM, and a promoted
// gogen-compiled native binary — and the report records the per-tier
// request cost plus the crossover point where the native tier (which
// pays a fork+exec per request) beats the warm VM. Outputs are compared
// byte-for-byte across tiers: a native artifact that does not reproduce
// the VM's stdout exactly is a correctness bug, not a speedup.
// Reported as BENCH_tiered.json.

// TieredRow is one workload measured on all three tiers.
type TieredRow struct {
	Workload      string `json:"workload"`
	InterpNS      int64  `json:"interp_ns"`        // warm interp execution
	VMNS          int64  `json:"vm_ns"`            // warm VM execution (cached bytecode)
	NativeNS      int64  `json:"native_ns"`        // native process wall clock (spawn included)
	PromoteWaitNS int64  `json:"promote_wait_ns"`  // first request → first native-served response
	NativeWins    bool   `json:"native_wins"`      // native_ns < vm_ns
	OutputsMatch  bool   `json:"outputs_match"`    // stdout identical across all three tiers
	Output        string `json:"output,omitempty"` // the (shared) stdout, if it matched
}

// TieredReport is the BENCH_tiered.json document.
type TieredReport struct {
	Experiment string      `json:"experiment"`
	HostCores  int         `json:"host_cores"`
	Quick      bool        `json:"quick"`
	Threshold  int         `json:"native_threshold"`
	Rows       []TieredRow `json:"rows"`
	Crossover  string      `json:"crossover"` // first workload where the native tier wins
}

// tieredWorkloads are deliberately loop-bound: tight scalar loops and
// recursion are where an interpreted or bytecode tier pays per-step
// dispatch that compiled Go does not.
func tieredWorkloads(quick bool) []struct {
	name string
	src  string
} {
	fib := func(n int) string {
		return fmt.Sprintf("def fib(n int) int:\n    if n < 2:\n        return n\n    return fib(n - 1) + fib(n - 2)\n\ndef main():\n    print(fib(%d))\n", n)
	}
	if quick {
		return []struct{ name, src string }{
			{"arith_loop(20k)", ArithLoopSource(20000)},
			{"arith_loop(80k)", ArithLoopSource(80000)},
			{"fib(18)", fib(18)},
		}
	}
	return []struct{ name, src string }{
		{"arith_loop(100k)", ArithLoopSource(100000)},
		{"arith_loop(400k)", ArithLoopSource(400000)},
		{"fib(24)", fib(24)},
	}
}

// TieredExperiment measures the three execution tiers through real HTTP.
// Two servers keep the measurement honest: a baseline tetrad with the
// native tier off provides clean interp/VM numbers, and a second tetrad
// with NativeThreshold=1 promotes on first sight so the native numbers
// are steady-state artifact executions.
func TieredExperiment(quick bool, reps int) (*TieredReport, error) {
	if !HaveToolchain() {
		return nil, fmt.Errorf("tiered experiment needs the Go toolchain for gogen artifacts")
	}
	if reps < 3 {
		reps = 3
	}

	base := server.New(server.Options{MaxInFlight: 2, QueueTimeout: 30 * time.Second})
	baseTS := httptest.NewServer(base)
	defer baseTS.Close()

	nat := server.New(server.Options{
		MaxInFlight:     2,
		QueueTimeout:    30 * time.Second,
		NativeThreshold: 1,
	})
	if nat.Promoter() == nil {
		baseTS.Close()
		return nil, fmt.Errorf("native tier unavailable (no Go toolchain/module)")
	}
	natTS := httptest.NewServer(nat)
	defer func() {
		natTS.Close()
		_ = nat.Drain(nil) // reap artifact processes; zero orphans
	}()

	rep := &TieredReport{
		Experiment: "tiered: interp vs warm VM vs promoted native artifact (per-request cost)",
		HostCores:  runtime.GOMAXPROCS(0),
		Quick:      quick,
		Threshold:  1,
	}

	for _, wl := range tieredWorkloads(quick) {
		interpNS, interpOut, err := measureTier(baseTS.URL, wl.src, server.BackendInterp, server.TierInProc, reps)
		if err != nil {
			return nil, fmt.Errorf("%s interp: %w", wl.name, err)
		}
		vmNS, vmOut, err := measureTier(baseTS.URL, wl.src, server.BackendVM, server.TierInProc, reps)
		if err != nil {
			return nil, fmt.Errorf("%s vm: %w", wl.name, err)
		}

		wait, err := awaitPromotion(natTS.URL, wl.src)
		if err != nil {
			return nil, fmt.Errorf("%s promotion: %w", wl.name, err)
		}
		nativeNS, nativeOut, err := measureTier(natTS.URL, wl.src, server.BackendVM, server.TierNative, reps)
		if err != nil {
			return nil, fmt.Errorf("%s native: %w", wl.name, err)
		}

		row := TieredRow{
			Workload:      wl.name,
			InterpNS:      interpNS,
			VMNS:          vmNS,
			NativeNS:      nativeNS,
			PromoteWaitNS: wait.Nanoseconds(),
			NativeWins:    nativeNS < vmNS,
			OutputsMatch:  interpOut == vmOut && vmOut == nativeOut,
		}
		if row.OutputsMatch {
			row.Output = interpOut
		}
		if row.NativeWins && rep.Crossover == "" {
			rep.Crossover = wl.name
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// postRun posts one /run request and decodes the body.
func postRun(url, src, backend string) (*server.RunResponse, error) {
	body, err := json.Marshal(server.RunRequest{Source: src, File: "tiered.ttr", Backend: backend})
	if err != nil {
		return nil, err
	}
	hresp, err := http.Post(url+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST /run: HTTP %d", hresp.StatusCode)
	}
	var rr server.RunResponse
	if err := json.NewDecoder(hresp.Body).Decode(&rr); err != nil {
		return nil, err
	}
	if !rr.OK {
		return nil, fmt.Errorf("benchmark program failed on %s tier: %+v", rr.Isolation, rr.Error)
	}
	return &rr, nil
}

// measureTier warms once, then takes the best of reps requests, insisting
// every measured response came from the expected tier.
func measureTier(url, src, backend, wantTier string, reps int) (bestNS int64, stdout string, err error) {
	if _, err := postRun(url, src, backend); err != nil {
		return 0, "", err
	}
	for i := 0; i < reps; i++ {
		rr, err := postRun(url, src, backend)
		if err != nil {
			return 0, "", err
		}
		if rr.Isolation != wantTier {
			return 0, "", fmt.Errorf("expected tier %q, got %q", wantTier, rr.Isolation)
		}
		ns := rr.RunMicros * 1000
		if bestNS == 0 || ns < bestNS {
			bestNS = ns
		}
		stdout = rr.Stdout
	}
	return bestNS, stdout, nil
}

// awaitPromotion drives requests at the native server until one is served
// by the native tier (the background builder finished), returning how
// long promotion took from first sight.
func awaitPromotion(url, src string) (time.Duration, error) {
	const patience = 4 * time.Minute // first `go build` on a cold host is slow
	start := time.Now()
	deadline := start.Add(patience)
	for time.Now().Before(deadline) {
		rr, err := postRun(url, src, server.BackendVM)
		if err != nil {
			return 0, err
		}
		if rr.Isolation == server.TierNative {
			return time.Since(start), nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return 0, fmt.Errorf("no native-served response within %s", patience)
}

// WriteTieredJSON writes the report for committing as BENCH_tiered.json.
func WriteTieredJSON(path string, rep *TieredReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatTieredTable renders the report for the terminal.
func FormatTieredTable(rep *TieredReport) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "  %d host cores, native threshold %d, per-request cost (best of reps, warm)\n",
		rep.HostCores, rep.Threshold)
	fmt.Fprintf(&b, "  %-17s %12s %12s %12s %9s %7s\n",
		"workload", "interp", "vm(warm)", "native", "nat/vm", "match")
	for _, r := range rep.Rows {
		ratio := 0.0
		if r.VMNS > 0 {
			ratio = float64(r.NativeNS) / float64(r.VMNS)
		}
		fmt.Fprintf(&b, "  %-17s %12s %12s %12s %8.2fx %7v\n",
			r.Workload,
			time.Duration(r.InterpNS).Round(10*time.Microsecond),
			time.Duration(r.VMNS).Round(10*time.Microsecond),
			time.Duration(r.NativeNS).Round(10*time.Microsecond),
			ratio, r.OutputsMatch)
	}
	if rep.Crossover != "" {
		fmt.Fprintf(&b, "  crossover: native beats the warm VM from %s on\n", rep.Crossover)
	} else {
		fmt.Fprintf(&b, "  crossover: native never beat the warm VM (fork+exec dominates at these sizes)\n")
	}
	return b.String()
}
