package bench

import (
	"fmt"
	"strings"
	"testing"
)

func TestPrimesSourceCorrect(t *testing.T) {
	// The Tetra workload must agree with the native baseline at every
	// worker count (splitting must not lose boundary candidates).
	for _, w := range []int{1, 2, 3, 4, 8} {
		res, err := RunOnce("primes.ttr", PrimesSource(2000, w), Interp)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		want := fmt.Sprintf("%d", PrimesNative(2000, 1))
		if res.Output != want {
			t.Errorf("workers=%d: tetra=%s native=%s", w, res.Output, want)
		}
	}
}

func TestPrimesNativeKnownValues(t *testing.T) {
	cases := []struct{ limit, want int }{
		{10, 4}, // 2 3 5 7
		{100, 25},
		{1000, 168},
		{10000, 1229},
	}
	for _, c := range cases {
		if got := PrimesNative(c.limit, 1); got != c.want {
			t.Errorf("π(%d) = %d, want %d", c.limit, got, c.want)
		}
		if got := PrimesNative(c.limit, 4); got != c.want {
			t.Errorf("π(%d) with 4 workers = %d, want %d", c.limit, got, c.want)
		}
	}
}

func TestTSPSourceCorrect(t *testing.T) {
	native := TSPNative(8, 1)
	for _, w := range []int{1, 2, 4} {
		res, err := RunOnce("tsp.ttr", TSPSource(8, w), Interp)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		want := fmt.Sprintf("%.0f", native)
		if res.Output != want {
			t.Errorf("workers=%d: tetra=%s native=%s", w, res.Output, want)
		}
	}
}

func TestTSPNativeWorkerInvariance(t *testing.T) {
	// The optimum must not depend on how branches are distributed.
	base := TSPNative(9, 1)
	for _, w := range []int{2, 4, 8} {
		if got := TSPNative(9, w); got != base {
			t.Errorf("workers=%d: %f != %f", w, got, base)
		}
	}
}

func TestBackendsAgree(t *testing.T) {
	src := PrimesSource(3000, 4)
	a, err := RunOnce("p.ttr", src, Interp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnce("p.ttr", src, VM)
	if err != nil {
		t.Fatal(err)
	}
	if a.Output != b.Output {
		t.Errorf("interp=%s vm=%s", a.Output, b.Output)
	}
}

func TestSpeedupTableShape(t *testing.T) {
	rows, err := Speedup("primes", func(w int) string { return PrimesSource(3000, w) }, []int{1, 2}, 1, Interp)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Speedup != 1.0 || rows[0].Efficiency != 1.0 {
		t.Errorf("baseline row = %+v", rows[0])
	}
	if rows[0].Output != rows[1].Output {
		t.Errorf("outputs differ across worker counts: %q vs %q", rows[0].Output, rows[1].Output)
	}
	text := FormatTable("t", rows)
	if !strings.Contains(text, "workers") || !strings.Contains(text, "100.0%") {
		t.Errorf("table = %q", text)
	}
}

func TestSimSpeedupShape(t *testing.T) {
	rows, err := SimSpeedup("primes", func(w int) string { return PrimesSource(20000, w) }, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The reproduction criterion (DESIGN.md §4): parallel beats sequential
	// and speedup grows with the core count.
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup <= rows[i-1].Speedup {
			t.Errorf("simulated speedup not increasing: %+v", rows)
		}
	}
	if rows[3].Speedup < 2.0 {
		t.Errorf("8-core simulated speedup = %.2f, implausibly low", rows[3].Speedup)
	}
	if rows[3].Speedup > 8.0 {
		t.Errorf("8-core simulated speedup = %.2f, superlinear is impossible here", rows[3].Speedup)
	}
	if rows[3].Efficiency > 1.0 {
		t.Errorf("efficiency > 100%%: %+v", rows[3])
	}
}

func TestTSPCoordsDeterministic(t *testing.T) {
	a := TSPSource(9, 2)
	b := TSPSource(9, 2)
	if a != b {
		t.Error("TSP source not deterministic")
	}
	// Different n gives a different instance, same prefix coordinates.
	if TSPSource(9, 2) == TSPSource(10, 2) {
		t.Error("instance should depend on n")
	}
}

func TestRunOnceReportsErrors(t *testing.T) {
	if _, err := RunOnce("bad.ttr", "def main(:\n", Interp); err == nil {
		t.Error("compile error not propagated")
	}
	if _, err := RunOnce("bad.ttr", "def main():\n    x = 0\n    print(1 / x)\n", VM); err == nil {
		t.Error("runtime error not propagated")
	}
}

func TestOptReportShape(t *testing.T) {
	rep, err := Opt(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3*len(rep.Levels) {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), 3*len(rep.Levels))
	}
	// Outputs must be identical across levels within a workload — the
	// optimizer may only change speed, never results.
	byWorkload := map[string]string{}
	for _, r := range rep.Rows {
		if prev, ok := byWorkload[r.Workload]; ok && prev != r.Output {
			t.Errorf("%s: output differs across levels: %q vs %q", r.Workload, prev, r.Output)
		}
		byWorkload[r.Workload] = r.Output
		if r.WallNS <= 0 {
			t.Errorf("%s O%d: non-positive time %d", r.Workload, r.Level, r.WallNS)
		}
	}
	for _, c := range rep.Cache {
		if c.WarmNS <= 0 || c.ColdNS <= 0 {
			t.Errorf("%s: cache times cold=%d warm=%d", c.Workload, c.ColdNS, c.WarmNS)
		}
		if c.WarmNS >= c.ColdNS {
			t.Errorf("%s: warm cache hit (%dns) not faster than cold compile (%dns)", c.Workload, c.WarmNS, c.ColdNS)
		}
	}
}
