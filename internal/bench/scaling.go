package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/simsched"
)

// The scaling experiment (tetrabench -exp scaling) seeds the repo's perf
// trajectory for the chunked work-sharing scheduler: three plain
// `parallel for i in range(n)` workloads — one goroutine pool, no
// source-level chunking — measured at 1/2/4/8 workers via Config.Sched.
//
// Two numbers are recorded per point. Wall-clock time is the honest
// on-host measurement; on a single-core host it cannot show speedup (the
// paper's 8-core testbed could). The headline speedup therefore comes
// from the same virtual-multicore substitution the E1/E2 experiments use
// (DESIGN.md §3.5): the interpreter counts each iteration-thread's work,
// and simsched.ChunkedTime replays the chunk-claiming schedule on W
// virtual cores, charging spawn overhead per worker.

// ScalingRow is one (workload, workers) measurement.
type ScalingRow struct {
	Workload    string  `json:"workload"`
	Workers     int     `json:"workers"`
	WallNS      int64   `json:"wall_ns"`
	WallSpeedup float64 `json:"wall_speedup"`
	SimUnits    int64   `json:"sim_time_units"`
	Speedup     float64 `json:"speedup"` // simulated multicore, the headline
	Efficiency  float64 `json:"efficiency"`
	Output      string  `json:"output"`
}

// ScalingReport is the BENCH_scaling.json document.
type ScalingReport struct {
	Experiment   string       `json:"experiment"`
	HostCores    int          `json:"host_cores"`
	Quick        bool         `json:"quick"`
	SpeedupModel string       `json:"speedup_model"`
	Rows         []ScalingRow `json:"rows"`
}

// ParallelSumSource is the scaling experiment's embarrassingly parallel
// baseline: sum f(i) over range(n), one parallel-for iteration per
// element, results meeting in disjoint slots.
func ParallelSumSource(n, inner int) string {
	return fmt.Sprintf(`# sum of a per-element function, one iteration per element
def f(x int, inner int) int:
    total = 0
    j = 0
    while j < inner:
        total += (x * j) %% 97
        j += 1
    return total

def main():
    n = %d
    out = range(n)
    parallel for i in range(n):
        out[i] = f(i, %d)
    total = 0
    for v in out:
        total += v
    print(total)
`, n, inner)
}

// MandelbrotSource renders an escape-time fractal over a w×h grid, one
// parallel-for iteration per pixel. Iteration cost varies wildly across
// the grid (interior pixels run to the cap), exercising the scheduler's
// load balancing.
func MandelbrotSource(w, h, maxIter int) string {
	return fmt.Sprintf(`# escape-time fractal, one iteration per pixel
def escape(px int, py int, w int, h int, cap int) int:
    cr = (to_real(px) / to_real(w)) * 3.0 - 2.0
    ci = (to_real(py) / to_real(h)) * 2.0 - 1.0
    zr = 0.0
    zi = 0.0
    n = 0
    while n < cap:
        t = zr * zr - zi * zi + cr
        zi = 2.0 * zr * zi + ci
        zr = t
        if zr * zr + zi * zi > 4.0:
            return n
        n += 1
    return cap

def main():
    w = %d
    h = %d
    cap = %d
    out = range(w * h)
    parallel for p in range(w * h):
        out[p] = escape(p %% w, p / w, w, h, cap)
    sum = 0
    for v in out:
        sum += v
    print(sum)
`, w, h, maxIter)
}

// ScalingPrimesSource tests primality of every candidate independently —
// one parallel-for iteration per number, unlike E1's source-level range
// split — and counts the primes.
func ScalingPrimesSource(limit int) string {
	return fmt.Sprintf(`# per-element primality, one iteration per candidate
def is_prime(n int) int:
    if n < 2:
        return 0
    if n %% 2 == 0:
        if n == 2:
            return 1
        return 0
    i = 3
    while i * i <= n:
        if n %% i == 0:
            return 0
        i += 2
    return 1

def main():
    limit = %d
    out = range(limit)
    parallel for n in range(limit):
        out[n] = is_prime(n)
    count = 0
    for v in out:
        count += v
    print(count)
`, limit)
}

// scalingWorkloads returns the three workload sources, sized for a full
// or quick (CI) run.
func scalingWorkloads(quick bool) []struct{ name, src string } {
	if quick {
		return []struct{ name, src string }{
			{"parallelsum", ParallelSumSource(300, 40)},
			{"mandelbrot", MandelbrotSource(24, 16, 40)},
			{"primes", ScalingPrimesSource(1500)},
		}
	}
	return []struct{ name, src string }{
		{"parallelsum", ParallelSumSource(2000, 120)},
		{"mandelbrot", MandelbrotSource(64, 48, 60)},
		{"primes", ScalingPrimesSource(8000)},
	}
}

// Scaling runs the scaling experiment on the interpreter at each worker
// count: wall-clock (best of reps) plus the simulated-multicore replay of
// the chunked schedule.
func Scaling(quick bool, workerCounts []int, reps int) (*ScalingReport, error) {
	if reps < 1 {
		reps = 1
	}
	rep := &ScalingReport{
		Experiment:   "scaling",
		HostCores:    runtime.GOMAXPROCS(0),
		Quick:        quick,
		SpeedupModel: "simulated multicore (per-iteration work counts replayed through the chunked scheduler; wall_ns is the on-host measurement)",
	}
	for _, wl := range scalingWorkloads(quick) {
		prog, err := core.Compile(wl.name+".ttr", wl.src)
		if err != nil {
			return nil, err
		}

		// One profiled run per workload: per-iteration work is a property
		// of the program, not of the worker count.
		var profOut bytes.Buffer
		tw, err := core.RunProfiled(prog, core.Config{Stdout: &profOut})
		if err != nil {
			return nil, err
		}
		profile := simsched.Profile{SpawnCost: DefaultSpawnCost}
		for _, t := range tw {
			if t.ID == 0 {
				profile.Serial += t.Work
			} else {
				profile.Workers = append(profile.Workers, t.Work)
			}
		}
		n := len(profile.Workers)

		var wall1 time.Duration
		var sim1 int64
		for _, w := range workerCounts {
			cfg := core.Config{Sched: sched.Config{Workers: w}}
			best := time.Duration(1<<63 - 1)
			var output string
			for r := 0; r < reps; r++ {
				var out bytes.Buffer
				cfg.Stdout = &out
				start := time.Now()
				if err := core.Run(prog, cfg); err != nil {
					return nil, err
				}
				if d := time.Since(start); d < best {
					best = d
				}
				output = out.String()
			}
			grain := (sched.Config{Workers: w}).GrainFor(n, w)
			sim := profile.ChunkedTime(w, grain)
			if w == workerCounts[0] {
				wall1, sim1 = best, sim
			}
			row := ScalingRow{
				Workload: wl.name,
				Workers:  w,
				WallNS:   best.Nanoseconds(),
				SimUnits: sim,
				Output:   trimOutput(output),
			}
			if best > 0 {
				row.WallSpeedup = float64(wall1) / float64(best)
			}
			if sim > 0 {
				row.Speedup = float64(sim1) / float64(sim)
				row.Efficiency = row.Speedup / float64(w)
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

func trimOutput(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}

// WriteScalingJSON writes the report to path, pretty-printed for diffable
// commits of BENCH_scaling.json.
func WriteScalingJSON(path string, rep *ScalingReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatScalingTable renders the report for the terminal.
func FormatScalingTable(rep *ScalingReport) string {
	var sb bytes.Buffer
	last := ""
	for _, r := range rep.Rows {
		if r.Workload != last {
			if last != "" {
				sb.WriteString("\n")
			}
			fmt.Fprintf(&sb, "%s\n", r.Workload)
			sb.WriteString("  workers       wall  wall-spd   sim-spd  efficiency  output\n")
			last = r.Workload
		}
		fmt.Fprintf(&sb, "  %7d  %9s  %7.2fx  %7.2fx  %9.1f%%  %s\n",
			r.Workers, time.Duration(r.WallNS).Round(time.Microsecond),
			r.WallSpeedup, r.Speedup, 100*r.Efficiency, r.Output)
	}
	return sb.String()
}
