// Package debugger implements Tetra's parallel debugging engine — the
// reproduction of the paper's IDE capability (§III): "the Tetra IDE will
// have multiple code views in debug mode: one for each thread of the
// currently running program. This will allow students to step through the
// different threads independently."
//
// The engine runs a program on the tree-walking interpreter and intercepts
// every statement through the interpreter's step hook. Each Tetra thread
// gets its own cursor and can be stepped, resumed or parked independently
// of the others, which is exactly the facility the paper notes native
// debuggers cannot provide. Students can drive one thread all the way to a
// lock while another is held at its first statement, observing race and
// deadlock interleavings on purpose.
//
// The terminal front-end lives in cmd/tetradbg; this package is the
// programmatic API (and is how the debugger is tested).
package debugger

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/token"
	"repro/internal/trace"
	"repro/internal/value"
)

// runMode is a thread's scheduling directive.
type runMode int

const (
	modePaused runMode = iota // park at the next statement
	modeStep                  // execute one statement, then pause
	modeNext                  // step over: pause at the next statement at
	// the same or a shallower call depth (calls run to completion)
	modeRunning // free-running (until breakpoint or PauseAll)
)

// ThreadState describes one Tetra thread as last seen by the engine.
type ThreadState struct {
	ID       int
	Func     string    // enclosing function name
	Pos      token.Pos // position of the pending statement
	Stmt     string    // pretty-printed pending statement
	Paused   bool      // parked inside the hook, waiting for a command
	Finished bool
}

// threadCtl is the engine's per-thread bookkeeping.
type threadCtl struct {
	state ThreadState
	mode  runMode
	fn    *ast.FuncDecl
	frame interp.FrameView
	depth int
	// nextDepth is the call depth at which a step-over was issued; the
	// thread re-parks at the first statement with depth <= nextDepth.
	nextDepth int
	// pauseGen increments every time the thread parks, so steppers can
	// distinguish a fresh pause from the one they resumed.
	pauseGen uint64
}

// Engine drives one debug session.
type Engine struct {
	prog *ast.Program

	mu     sync.Mutex
	cond   *sync.Cond
	thr    map[int]*threadCtl
	breaks map[int]bool // line numbers
	// defaultMode is applied to newly spawned threads: paused when the
	// session stops on entry (so students catch threads at birth), running
	// otherwise.
	defaultMode runMode
	done        bool
	runErr      error
	in          *interp.Interp // the running backend, for Kill
	onPark      func(ThreadState)
}

// Config configures a session.
type Config struct {
	// Core is the execution configuration (I/O, tracing). The Step field is
	// overwritten by the engine.
	Core core.Config
	// StopOnEntry parks every thread at its first statement (default
	// semantics of the session; recommended).
	StopOnEntry bool
	// OnPark, when set, is invoked each time a thread parks in the hook,
	// with that thread's fresh state — the event feed for streaming
	// front-ends (internal/session). It is called with the engine lock
	// held: implementations must not block and must not call back into
	// the engine.
	OnPark func(ThreadState)
}

// New prepares (but does not start) a debug session for the program.
func New(prog *ast.Program, cfg Config) *Engine {
	e := &Engine{
		prog:   prog,
		thr:    map[int]*threadCtl{},
		breaks: map[int]bool{},
		onPark: cfg.OnPark,
	}
	e.cond = sync.NewCond(&e.mu)
	if cfg.StopOnEntry {
		e.defaultMode = modePaused
	} else {
		e.defaultMode = modeRunning
	}
	return e
}

// engineTracer observes thread-end events so the thread table shows
// finished threads promptly, forwarding everything to the user's tracer.
type engineTracer struct {
	e     *Engine
	inner trace.Tracer
}

func (t engineTracer) Emit(ev trace.Event) {
	if ev.Kind == trace.ThreadEnd {
		t.e.mu.Lock()
		if th, ok := t.e.thr[ev.Thread]; ok {
			th.state.Finished = true
			th.state.Paused = false
		}
		t.e.mu.Unlock()
		t.e.cond.Broadcast()
	}
	if t.inner != nil {
		t.inner.Emit(ev)
	}
}

// Start launches the program under the debugger. It returns immediately;
// use Wait or the stepping API to interact. Deadlock detection is disabled
// so students can watch a deadlock form thread by thread.
func (e *Engine) Start(cfg Config) {
	ccfg := cfg.Core
	ccfg.Step = e.hook
	ccfg.Tracer = engineTracer{e: e, inner: cfg.Core.Tracer}
	ccfg.NoDeadlockDetection = true
	in := core.NewInterp(e.prog, ccfg)
	e.mu.Lock()
	e.in = in
	e.mu.Unlock()
	go func() {
		err := in.Run()
		e.mu.Lock()
		e.done = true
		e.runErr = err
		for _, t := range e.thr {
			t.state.Finished = true
			t.state.Paused = false
		}
		e.mu.Unlock()
		e.cond.Broadcast()
	}()
}

// Kill aborts the session: the backend is cancelled (tripping the governor
// when one is armed, waking lock- and input-parked threads) and every
// parked thread is released so it observes the stop at its next statement
// and unwinds. After Kill, Wait returns promptly with the cancellation
// error. Used by eviction and drain in internal/session — the liveness
// guarantee that no debug session can outlive its owner.
func (e *Engine) Kill() {
	e.mu.Lock()
	in := e.in
	e.mu.Unlock()
	if in != nil {
		in.Cancel()
	}
	e.ContinueAll()
}

// Run is New + Start in one call.
func Run(prog *ast.Program, cfg Config) *Engine {
	e := New(prog, cfg)
	e.Start(cfg)
	return e
}

// hook is installed as the interpreter's step hook; every Tetra statement
// passes through here.
func (e *Engine) hook(threadID int, fn *ast.FuncDecl, stmt ast.Stmt, frame interp.FrameView, depth int) {
	e.mu.Lock()
	defer e.mu.Unlock()

	t := e.thr[threadID]
	if t == nil {
		t = &threadCtl{mode: e.defaultMode}
		t.state.ID = threadID
		e.thr[threadID] = t
	}
	t.fn = fn
	t.frame = frame
	t.depth = depth
	t.state.Func = fn.Name
	t.state.Pos = stmt.Pos()
	// Compound statements print with their whole body; the cursor display
	// only needs the header line.
	rendered := ast.PrintStmt(stmt, 0)
	if i := strings.IndexByte(rendered, '\n'); i >= 0 {
		rendered = rendered[:i] + " ..."
	}
	t.state.Stmt = rendered

	switch {
	case t.mode == modeStep:
		t.mode = modePaused
	case t.mode == modeNext && depth <= t.nextDepth:
		t.mode = modePaused
	case (t.mode == modeRunning || t.mode == modeNext) && e.breaks[stmt.Pos().Line]:
		t.mode = modePaused
	}
	if t.mode != modePaused {
		return
	}

	t.state.Paused = true
	t.pauseGen++
	if e.onPark != nil {
		e.onPark(t.state)
	}
	e.cond.Broadcast() // state changed: waiters can observe the pause
	for t.mode == modePaused && !e.done {
		e.cond.Wait()
	}
	t.state.Paused = false
	if t.mode == modeStep {
		// Leaving the hook to run exactly this one statement; the next
		// entry re-parks.
	}
}

// Threads returns a snapshot of all threads seen so far, ordered by id.
func (e *Engine) Threads() []ThreadState {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ThreadState, 0, len(e.thr))
	for _, t := range e.thr {
		out = append(out, t.state)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Thread returns the state of one thread.
func (e *Engine) Thread(id int) (ThreadState, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.thr[id]
	if !ok {
		return ThreadState{}, false
	}
	return t.state, true
}

// StepResult reports how a step-and-wait call ended.
type StepResult int

// Step-and-wait outcomes.
const (
	// StepNoThread: the thread id is unknown or the thread had already
	// finished when the command was issued; no step happened.
	StepNoThread StepResult = iota
	// StepParked: the thread executed and parked at its next statement;
	// the returned state is that fresh park.
	StepParked
	// StepFinished: the thread (or the whole program) finished during the
	// step; the returned state is terminal.
	StepFinished
	// StepTimeout: the deadline expired before the thread re-parked. The
	// stepped statement is still in flight (a contended lock, a blocking
	// read) and the returned state is a point-in-time snapshot that may
	// be stale by the time the caller reads it.
	StepTimeout
)

// String names the outcome for logs and wire protocols.
func (r StepResult) String() string {
	switch r {
	case StepNoThread:
		return "no-thread"
	case StepParked:
		return "parked"
	case StepFinished:
		return "finished"
	case StepTimeout:
		return "timeout"
	}
	return fmt.Sprintf("StepResult(%d)", int(r))
}

// live returns the thread's control block when the thread exists and has
// not finished. Must hold e.mu. This is THE finished-thread gate: Step,
// Next, Continue, Pause, StepAndWait and NextAndWait all consult it, so
// the contract — commands against unknown or finished threads report
// failure and change nothing — cannot drift between entry points again.
func (e *Engine) live(id int) (*threadCtl, bool) {
	t, ok := e.thr[id]
	if !ok || t.state.Finished {
		return nil, false
	}
	return t, true
}

// Step lets thread id execute exactly one statement. It reports whether
// the thread exists and has not finished (the same contract as Next,
// Continue and Pause; a finished thread rejects all commands).
func (e *Engine) Step(id int) bool { return e.setMode(id, modeStep) }

// Next steps over: thread id executes until the next statement at its
// current (or a shallower) call depth, so function calls complete without
// stopping inside them. Like Step, it reports false for unknown or
// finished threads.
func (e *Engine) Next(id int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.live(id)
	if !ok {
		return false
	}
	t.nextDepth = t.depth
	t.mode = modeNext
	e.cond.Broadcast()
	return true
}

// NextAndWait is Next plus waiting for the re-park, mirroring StepAndWait.
func (e *Engine) NextAndWait(id int, timeout time.Duration) (ThreadState, StepResult) {
	return e.stepWait(id, modeNext, timeout)
}

// StepAndWait executes one statement on thread id and blocks until the
// thread parks at its next statement, finishes, or the timeout expires —
// the StepResult says which, so a deadline expiry can never be mistaken
// for a successful park (it used to report success with a stale state).
func (e *Engine) StepAndWait(id int, timeout time.Duration) (ThreadState, StepResult) {
	return e.stepWait(id, modeStep, timeout)
}

// stepWait issues a step/step-over and waits for the thread's next park.
func (e *Engine) stepWait(id int, m runMode, timeout time.Duration) (ThreadState, StepResult) {
	deadline := time.Now().Add(timeout)
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.live(id)
	if !ok {
		return ThreadState{}, StepNoThread
	}
	gen := t.pauseGen
	if m == modeNext {
		t.nextDepth = t.depth
	}
	t.mode = m
	e.cond.Broadcast()
	for {
		if t.state.Finished || e.done {
			return t.state, StepFinished
		}
		if t.state.Paused && t.pauseGen > gen {
			return t.state, StepParked
		}
		if time.Now().After(deadline) {
			return t.state, StepTimeout
		}
		// The stepped statement may block forever (a contended lock, a
		// read); the deadline keeps the UI responsive.
		e.waitWithDeadline(deadline)
	}
}

// Continue lets thread id run freely until a breakpoint or PauseAll.
// Reports false for unknown or finished threads.
func (e *Engine) Continue(id int) bool { return e.setMode(id, modeRunning) }

// Pause parks thread id at its next statement. Reports false for unknown
// or finished threads.
func (e *Engine) Pause(id int) bool { return e.setMode(id, modePaused) }

func (e *Engine) setMode(id int, m runMode) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.live(id)
	if !ok {
		return false
	}
	t.mode = m
	e.cond.Broadcast()
	return true
}

// ContinueAll resumes every thread (and makes future threads free-running).
func (e *Engine) ContinueAll() {
	e.mu.Lock()
	e.defaultMode = modeRunning
	for _, t := range e.thr {
		if !t.state.Finished {
			t.mode = modeRunning
		}
	}
	e.mu.Unlock()
	e.cond.Broadcast()
}

// PauseAll parks every thread at its next statement (and makes future
// threads start paused).
func (e *Engine) PauseAll() {
	e.mu.Lock()
	e.defaultMode = modePaused
	for _, t := range e.thr {
		if !t.state.Finished {
			t.mode = modePaused
		}
	}
	e.mu.Unlock()
	e.cond.Broadcast()
}

// SetBreak sets a breakpoint on a source line (any thread reaching a
// statement that starts on that line pauses).
func (e *Engine) SetBreak(line int) {
	e.mu.Lock()
	e.breaks[line] = true
	e.mu.Unlock()
}

// ClearBreak removes a breakpoint.
func (e *Engine) ClearBreak(line int) {
	e.mu.Lock()
	delete(e.breaks, line)
	e.mu.Unlock()
}

// Breakpoints lists the active breakpoint lines, sorted.
func (e *Engine) Breakpoints() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]int, 0, len(e.breaks))
	for l := range e.breaks {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// Vars returns the variables of thread id's current frame: names paired
// with values, in slot order. Only meaningful while the thread is paused.
func (e *Engine) Vars(id int) ([]string, []value.Value, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.thr[id]
	if !ok || t.fn == nil || t.frame == nil || t.state.Finished {
		return nil, nil, false
	}
	names := make([]string, len(t.fn.SlotNames))
	vals := make([]value.Value, len(t.fn.SlotNames))
	for i, n := range t.fn.SlotNames {
		names[i] = n
		vals[i] = t.frame.Var(i)
	}
	return names, vals, true
}

// WaitPaused blocks until thread id is parked in the hook (or the program
// ends, or the timeout expires). It reports whether the thread is paused.
func (e *Engine) WaitPaused(id int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		// A thread counts as paused only when it is parked AND still
		// directed to stay parked — a thread just released by Step/Continue
		// keeps state.Paused until it wakes, which must not satisfy a
		// waiter issued after the release.
		if t, ok := e.thr[id]; ok && t.state.Paused && t.mode == modePaused {
			return true
		}
		if e.done || time.Now().After(deadline) {
			return false
		}
		e.waitWithDeadline(deadline)
	}
}

// WaitAnyPaused blocks until at least n threads are parked, or the program
// ends or the timeout expires. It returns the number of parked threads.
func (e *Engine) WaitAnyPaused(n int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		paused := 0
		for _, t := range e.thr {
			if t.state.Paused && t.mode == modePaused {
				paused++
			}
		}
		if paused >= n || e.done || time.Now().After(deadline) {
			return paused
		}
		e.waitWithDeadline(deadline)
	}
}

// Wait blocks until the program finishes and returns its error (nil on a
// clean run).
func (e *Engine) Wait() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for !e.done {
		e.cond.Wait()
	}
	return e.runErr
}

// Done reports whether the program has finished.
func (e *Engine) Done() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.done
}

// waitWithDeadline waits on the condition variable but wakes itself at the
// deadline, so WaitPaused cannot hang past its timeout. Must hold e.mu.
func (e *Engine) waitWithDeadline(deadline time.Time) {
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return
	}
	timer := time.AfterFunc(remaining, func() { e.cond.Broadcast() })
	e.cond.Wait()
	timer.Stop()
}

// Render formats the thread table as the CLI shows it:
//
//	id  state    where
//	t0  paused   main  max.ttr:12:5   nums = [18, 32, 96, 48, 60]
func Render(threads []ThreadState) string {
	var sb strings.Builder
	sb.WriteString("  id  state     function  position        next statement\n")
	for _, t := range threads {
		state := "running"
		if t.Finished {
			state = "finished"
		} else if t.Paused {
			state = "paused"
		}
		pos := "-"
		if t.Pos.IsValid() {
			pos = fmt.Sprintf("%d:%d", t.Pos.Line, t.Pos.Col)
		}
		fmt.Fprintf(&sb, "  t%-3d %-9s %-9s %-15s %s\n", t.ID, state, t.Func, pos, t.Stmt)
	}
	return sb.String()
}
