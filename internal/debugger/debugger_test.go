package debugger

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/parser"
)

const stepTimeout = 5 * time.Second

func compile(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse("dbg.ttr", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := check.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog
}

// session starts a program under the debugger, stopped on entry.
func session(t *testing.T, src string, out *bytes.Buffer) *Engine {
	t.Helper()
	prog := compile(t, src)
	cfg := Config{StopOnEntry: true}
	cfg.Core = core.Config{Stdout: out}
	eng := Run(prog, cfg)
	if !eng.WaitPaused(0, stepTimeout) {
		t.Fatal("main thread never paused on entry")
	}
	return eng
}

func TestStopOnEntry(t *testing.T) {
	var out bytes.Buffer
	eng := session(t, "def main():\n    x = 1\n    print(x)\n", &out)
	threads := eng.Threads()
	if len(threads) != 1 {
		t.Fatalf("threads = %v", threads)
	}
	st := threads[0]
	if !st.Paused || st.Func != "main" || st.Pos.Line != 2 {
		t.Errorf("entry state = %+v", st)
	}
	if out.Len() != 0 {
		t.Errorf("output before any step: %q", out.String())
	}
	eng.ContinueAll()
	if err := eng.Wait(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "1\n" {
		t.Errorf("output = %q", out.String())
	}
}

func TestStepAdvancesOneStatement(t *testing.T) {
	var out bytes.Buffer
	eng := session(t, "def main():\n    x = 1\n    y = 2\n    print(x + y)\n", &out)

	st, res := eng.StepAndWait(0, stepTimeout)
	if res != StepParked || !st.Paused || st.Pos.Line != 3 {
		t.Fatalf("after step 1: %+v", st)
	}
	st, _ = eng.StepAndWait(0, stepTimeout)
	if st.Pos.Line != 4 {
		t.Fatalf("after step 2: %+v", st)
	}
	if out.Len() != 0 {
		t.Error("print ran too early")
	}
	eng.ContinueAll()
	eng.Wait()
	if out.String() != "3\n" {
		t.Errorf("output = %q", out.String())
	}
}

func TestVarsInspection(t *testing.T) {
	var out bytes.Buffer
	eng := session(t, "def main():\n    x = 41\n    y = x + 1\n    print(y)\n", &out)
	eng.StepAndWait(0, stepTimeout) // executed x = 41
	names, vals, ok := eng.Vars(0)
	if !ok {
		t.Fatal("vars unavailable")
	}
	found := false
	for i, n := range names {
		if n == "x" {
			found = true
			if vals[i].Int() != 41 {
				t.Errorf("x = %v", vals[i])
			}
		}
	}
	if !found {
		t.Errorf("x not among %v", names)
	}
	eng.ContinueAll()
	eng.Wait()
}

func TestBreakpoint(t *testing.T) {
	var out bytes.Buffer
	src := `def main():
    a = 1
    b = 2
    c = 3
    print(a + b + c)
`
	eng := session(t, src, &out)
	eng.SetBreak(4) // line of c = 3
	if bp := eng.Breakpoints(); len(bp) != 1 || bp[0] != 4 {
		t.Errorf("breakpoints = %v", bp)
	}
	eng.Continue(0)
	if !eng.WaitPaused(0, stepTimeout) {
		t.Fatal("never hit breakpoint")
	}
	st, _ := eng.Thread(0)
	if st.Pos.Line != 4 {
		t.Errorf("stopped at line %d, want 4", st.Pos.Line)
	}
	names, vals, _ := eng.Vars(0)
	got := map[string]int64{}
	for i, n := range names {
		got[n] = vals[i].Int()
	}
	if got["a"] != 1 || got["b"] != 2 || got["c"] != 0 {
		t.Errorf("vars at breakpoint = %v", got)
	}
	eng.ClearBreak(4)
	eng.ContinueAll()
	if err := eng.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestFigure4DebuggerSession reproduces the IDE capability of Figure IV:
// two threads running the same code, stepped independently — one driven
// into the lock while the other stays parked at its first statement.
func TestFigure4DebuggerSession(t *testing.T) {
	var out bytes.Buffer
	src := `def work(k int) int:
    lock m:
        v = k * 2
    return v

def main():
    parallel:
        a = work(1)
        b = work(2)
    print(a + b)
`
	eng := session(t, src, &out)

	// Step main over the parallel statement: main blocks in the join while
	// the two child threads appear, each parked at its first statement.
	eng.Step(0)
	if got := eng.WaitAnyPaused(2, stepTimeout); got < 2 {
		t.Fatalf("expected 2 paused workers, have %d:\n%s", got, Render(eng.Threads()))
	}

	threads := eng.Threads()
	var workers []int
	for _, st := range threads {
		if st.ID != 0 {
			workers = append(workers, st.ID)
			if !st.Paused {
				t.Errorf("worker t%d not paused: %+v", st.ID, st)
			}
		}
	}
	if len(workers) != 2 {
		t.Fatalf("workers = %v", workers)
	}

	// Drive the first worker through its whole call while the second stays
	// parked at its first statement: independent per-thread stepping.
	first, second := workers[0], workers[1]
	secondBefore, _ := eng.Thread(second)
	for i := 0; i < 20; i++ {
		st, res := eng.StepAndWait(first, stepTimeout)
		if res != StepParked || st.Finished {
			break
		}
	}
	secondAfter, _ := eng.Thread(second)
	if secondAfter.Finished {
		t.Error("parked thread ran to completion while only stepping the other")
	}
	if secondBefore.Pos != secondAfter.Pos {
		t.Errorf("parked thread moved: %v → %v", secondBefore.Pos, secondAfter.Pos)
	}

	eng.ContinueAll()
	if err := eng.Wait(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "6\n" {
		t.Errorf("output = %q", out.String())
	}
}

func TestNextStepsOverCall(t *testing.T) {
	var out bytes.Buffer
	src := `def inner(x int) int:
    y = x + 1
    return y

def main():
    v = inner(5)
    w = v + 1
    print(w)
`
	eng := session(t, src, &out)
	// Entry pause is at `v = inner(5)`. Next must complete the call and
	// land on `w = v + 1`, never pausing inside inner.
	st, res := eng.NextAndWait(0, stepTimeout)
	if res != StepParked {
		t.Fatalf("NextAndWait = %v", res)
	}
	if st.Func != "main" || st.Pos.Line != 7 {
		t.Fatalf("after next: %+v (want main line 7)", st)
	}
	names, vals, _ := eng.Vars(0)
	for i, n := range names {
		if n == "v" && vals[i].Int() != 6 {
			t.Errorf("v = %v after stepping over inner", vals[i])
		}
	}
	eng.ContinueAll()
	eng.Wait()
	if out.String() != "7\n" {
		t.Errorf("output = %q", out.String())
	}
}

func TestNextStopsAtBreakpointInsideCall(t *testing.T) {
	var out bytes.Buffer
	src := `def inner(x int) int:
    y = x + 1
    return y

def main():
    v = inner(5)
    print(v)
`
	eng := session(t, src, &out)
	eng.SetBreak(3) // `return y` inside inner
	st, res := eng.NextAndWait(0, stepTimeout)
	if res != StepParked {
		t.Fatalf("NextAndWait = %v", res)
	}
	if st.Func != "inner" || st.Pos.Line != 3 {
		t.Fatalf("next skipped a breakpoint: %+v", st)
	}
	eng.ContinueAll()
	eng.Wait()
}

func TestStepIntoCall(t *testing.T) {
	var out bytes.Buffer
	src := `def inner(x int) int:
    return x + 1

def main():
    v = inner(5)
    print(v)
`
	eng := session(t, src, &out)
	// Step 1: executes `v = inner(5)` — but first the hook fires inside
	// inner at `return x + 1`.
	st, _ := eng.StepAndWait(0, stepTimeout)
	if st.Func != "inner" {
		t.Errorf("expected to land inside inner, got %+v", st)
	}
	eng.ContinueAll()
	eng.Wait()
	if out.String() != "6\n" {
		t.Errorf("output = %q", out.String())
	}
}

func TestPauseAllCatchesRunningThread(t *testing.T) {
	var out bytes.Buffer
	src := `def main():
    i = 0
    while i < 300000:
        i += 1
    print(i)
`
	eng := session(t, src, &out)
	eng.ContinueAll()
	eng.PauseAll()
	if !eng.WaitPaused(0, stepTimeout) {
		if eng.Done() {
			t.Skip("loop finished before pause landed (very fast host)")
		}
		t.Fatal("PauseAll never parked the thread")
	}
	st, _ := eng.Thread(0)
	if !st.Paused {
		t.Errorf("state = %+v", st)
	}
	eng.ContinueAll()
	eng.Wait()
}

func TestFinishedThreadRejectsCommands(t *testing.T) {
	var out bytes.Buffer
	eng := session(t, "def main():\n    print(1)\n", &out)
	eng.ContinueAll()
	if err := eng.Wait(); err != nil {
		t.Fatal(err)
	}
	if eng.Step(0) {
		t.Error("Step on finished thread should report false")
	}
	if _, res := eng.StepAndWait(0, time.Second); res != StepNoThread {
		t.Errorf("StepAndWait on finished thread = %v, want no-thread", res)
	}
	if eng.Step(42) {
		t.Error("Step on unknown thread should report false")
	}
}

func TestRuntimeErrorSurfacedThroughWait(t *testing.T) {
	var out bytes.Buffer
	eng := session(t, "def main():\n    a = [1]\n    print(a[9])\n", &out)
	eng.ContinueAll()
	err := eng.Wait()
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v", err)
	}
}

func TestRenderTable(t *testing.T) {
	threads := []ThreadState{
		{ID: 0, Func: "main", Paused: true, Stmt: "x = 1"},
		{ID: 1, Func: "work", Finished: true},
	}
	text := Render(threads)
	if !strings.Contains(text, "t0") || !strings.Contains(text, "paused") ||
		!strings.Contains(text, "finished") || !strings.Contains(text, "x = 1") {
		t.Errorf("render = %q", text)
	}
}

// blockingReader blocks every Read until unblocked, simulating a student
// program waiting on input that never arrives.
type blockingReader struct{ ch chan struct{} }

func (b *blockingReader) Read(p []byte) (int, error) {
	<-b.ch
	return 0, io.EOF
}

func TestStepWaitTimeoutIsDistinct(t *testing.T) {
	// The stepped statement blocks forever on input: StepAndWait must
	// report StepTimeout, never StepParked with a stale state (the old API
	// returned (state, true) on deadline expiry, indistinguishable from a
	// successful park).
	var out bytes.Buffer
	src := "def main():\n    x = read_int()\n    print(x)\n"
	prog := compile(t, src)
	in := &blockingReader{ch: make(chan struct{})}
	cfg := Config{StopOnEntry: true}
	cfg.Core = core.Config{Stdin: in, Stdout: &out}
	eng := Run(prog, cfg)
	if !eng.WaitPaused(0, stepTimeout) {
		t.Fatal("never paused on entry")
	}
	st, res := eng.StepAndWait(0, 150*time.Millisecond)
	if res != StepTimeout {
		t.Fatalf("StepAndWait on a blocked statement = %v (state %+v), want timeout", res, st)
	}
	if st.Finished {
		t.Errorf("timeout state claims the thread finished: %+v", st)
	}
	close(in.ch) // unblock the read; read_int errors out and the run ends
	eng.Wait()
}

func TestFinishedThreadContractUniform(t *testing.T) {
	// Step, Next, Continue and Pause share one finished-thread gate: all
	// of them must reject a finished thread and an unknown id alike.
	var out bytes.Buffer
	eng := session(t, "def main():\n    print(1)\n", &out)
	eng.ContinueAll()
	if err := eng.Wait(); err != nil {
		t.Fatal(err)
	}
	for name, cmd := range map[string]func(int) bool{
		"Step":     eng.Step,
		"Next":     eng.Next,
		"Continue": eng.Continue,
		"Pause":    eng.Pause,
	} {
		if cmd(0) {
			t.Errorf("%s on finished thread reported true", name)
		}
		if cmd(42) {
			t.Errorf("%s on unknown thread reported true", name)
		}
	}
	if _, res := eng.NextAndWait(0, time.Second); res != StepNoThread {
		t.Errorf("NextAndWait on finished thread = %v, want no-thread", res)
	}
}

func TestKillAbortsParkedSession(t *testing.T) {
	// Kill must end a session whose threads are parked in the hook: the
	// parked threads wake, observe the cancellation and unwind, so Wait
	// returns promptly — the liveness property eviction and drain rely on.
	var out bytes.Buffer
	eng := session(t, "def main():\n    x = 1\n    print(x)\n", &out)
	done := make(chan error, 1)
	go func() { done <- eng.Wait() }()
	eng.Kill()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "cancelled") {
			t.Errorf("Wait after Kill = %v, want cancellation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung after Kill: parked threads never released")
	}
	if out.Len() != 0 {
		t.Errorf("killed session still produced output %q", out.String())
	}
}

func TestOnParkHookObservesPauses(t *testing.T) {
	var out bytes.Buffer
	var mu sync.Mutex
	var parks []ThreadState
	prog := compile(t, "def main():\n    x = 1\n    y = 2\n    print(x + y)\n")
	cfg := Config{StopOnEntry: true, OnPark: func(st ThreadState) {
		mu.Lock()
		parks = append(parks, st)
		mu.Unlock()
	}}
	cfg.Core = core.Config{Stdout: &out}
	eng := Run(prog, cfg)
	if !eng.WaitPaused(0, stepTimeout) {
		t.Fatal("never paused on entry")
	}
	eng.StepAndWait(0, stepTimeout)
	eng.ContinueAll()
	eng.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(parks) < 2 {
		t.Fatalf("OnPark fired %d times, want >= 2 (entry + one step)", len(parks))
	}
	for _, st := range parks {
		if !st.Paused {
			t.Errorf("OnPark delivered a non-paused state: %+v", st)
		}
	}
}
