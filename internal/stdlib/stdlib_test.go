package stdlib

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/types"
	"repro/internal/value"
)

func env(input string) (*Env, *bytes.Buffer) {
	var out bytes.Buffer
	return NewEnv(strings.NewReader(input), &out), &out
}

// evalB runs builtin `name` on args, failing the test on error.
func evalB(t *testing.T, e *Env, name string, args ...value.Value) value.Value {
	t.Helper()
	b := Lookup(name)
	if b == nil {
		t.Fatalf("no builtin %q", name)
	}
	v, err := b.Eval(e, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func TestLookupAndIDs(t *testing.T) {
	names := Names()
	if len(names) != numBuiltins {
		t.Fatalf("Names() returned %d entries, want %d", len(names), numBuiltins)
	}
	for id, name := range names {
		b := Lookup(name)
		if b == nil || b.ID != id || ByID(id) != b {
			t.Errorf("builtin %q id mapping broken", name)
		}
	}
	if Lookup("no_such_builtin") != nil {
		t.Error("Lookup of unknown name should be nil")
	}
}

func TestPrint(t *testing.T) {
	e, out := env("")
	evalB(t, e, "print", value.NewInt(1), value.NewString(" and "), value.NewReal(2.5))
	if got := out.String(); got != "1 and 2.5\n" {
		t.Errorf("print wrote %q", got)
	}
	evalB(t, e, "print")
	if !strings.HasSuffix(out.String(), "\n\n") {
		t.Errorf("empty print should write a newline: %q", out.String())
	}
}

func TestReadBuiltins(t *testing.T) {
	e, _ := env("42 2.5 true\nhello world\n")
	if v := evalB(t, e, "read_int"); v.Int() != 42 {
		t.Errorf("read_int = %v", v)
	}
	if v := evalB(t, e, "read_real"); v.Real() != 2.5 {
		t.Errorf("read_real = %v", v)
	}
	if v := evalB(t, e, "read_bool"); !v.Bool() {
		t.Errorf("read_bool = %v", v)
	}
	if v := evalB(t, e, "read_string"); v.Str() != "hello world" {
		t.Errorf("read_string = %q", v.Str())
	}
}

func TestReadErrors(t *testing.T) {
	e, _ := env("notanumber")
	if _, err := Lookup("read_int").Eval(e, nil); err == nil {
		t.Error("read_int on garbage should fail")
	}
	e2, _ := env("")
	if _, err := Lookup("read_string").Eval(e2, nil); err == nil {
		t.Error("read_string at EOF should fail")
	}
	e3, _ := env("maybe")
	if _, err := Lookup("read_bool").Eval(e3, nil); err == nil {
		t.Error("read_bool on garbage should fail")
	}
}

func TestLen(t *testing.T) {
	e, _ := env("")
	arr := value.NewArray(value.FromSlice(types.IntType, []value.Value{value.NewInt(1), value.NewInt(2)}))
	if v := evalB(t, e, "len", arr); v.Int() != 2 {
		t.Errorf("len(array) = %v", v)
	}
	if v := evalB(t, e, "len", value.NewString("abcd")); v.Int() != 4 {
		t.Errorf("len(string) = %v", v)
	}
}

func TestRange(t *testing.T) {
	e, _ := env("")
	v := evalB(t, e, "range", value.NewInt(4))
	a := v.Array()
	if a.Len() != 4 || a.Get(0).Int() != 0 || a.Get(3).Int() != 3 {
		t.Errorf("range(4) = %v", v)
	}
	v2 := evalB(t, e, "range", value.NewInt(2), value.NewInt(5))
	a2 := v2.Array()
	if a2.Len() != 3 || a2.Get(0).Int() != 2 || a2.Get(2).Int() != 4 {
		t.Errorf("range(2,5) = %v", v2)
	}
	v3 := evalB(t, e, "range", value.NewInt(5), value.NewInt(2))
	if v3.Array().Len() != 0 {
		t.Errorf("range(5,2) should be empty")
	}
}

func TestMathBuiltins(t *testing.T) {
	e, _ := env("")
	if v := evalB(t, e, "sqrt", value.NewInt(9)); v.Real() != 3 {
		t.Errorf("sqrt(9) = %v", v)
	}
	if v := evalB(t, e, "abs", value.NewInt(-5)); v.K != value.Int || v.Int() != 5 {
		t.Errorf("abs(-5) = %v", v)
	}
	if v := evalB(t, e, "abs", value.NewReal(-1.5)); v.K != value.Real || v.Real() != 1.5 {
		t.Errorf("abs(-1.5) = %v", v)
	}
	if v := evalB(t, e, "pow", value.NewInt(2), value.NewInt(10)); v.Real() != 1024 {
		t.Errorf("pow(2,10) = %v", v)
	}
	if v := evalB(t, e, "floor", value.NewReal(2.7)); v.K != value.Int || v.Int() != 2 {
		t.Errorf("floor(2.7) = %v", v)
	}
	if v := evalB(t, e, "ceil", value.NewReal(2.1)); v.Int() != 3 {
		t.Errorf("ceil(2.1) = %v", v)
	}
	if v := evalB(t, e, "sin", value.NewReal(0)); v.Real() != 0 {
		t.Errorf("sin(0) = %v", v)
	}
	if v := evalB(t, e, "cos", value.NewReal(0)); v.Real() != 1 {
		t.Errorf("cos(0) = %v", v)
	}
	if v := evalB(t, e, "exp", value.NewReal(0)); v.Real() != 1 {
		t.Errorf("exp(0) = %v", v)
	}
	if v := evalB(t, e, "log", value.NewReal(math.E)); math.Abs(v.Real()-1) > 1e-12 {
		t.Errorf("log(e) = %v", v)
	}
	if v := evalB(t, e, "tan", value.NewReal(0)); v.Real() != 0 {
		t.Errorf("tan(0) = %v", v)
	}
}

func TestMinMax(t *testing.T) {
	e, _ := env("")
	if v := evalB(t, e, "min", value.NewInt(3), value.NewInt(1), value.NewInt(2)); v.K != value.Int || v.Int() != 1 {
		t.Errorf("min ints = %v", v)
	}
	if v := evalB(t, e, "max", value.NewInt(3), value.NewReal(3.5)); v.K != value.Real || v.Real() != 3.5 {
		t.Errorf("max mixed = %v", v)
	}
	if v := evalB(t, e, "min", value.NewInt(1), value.NewReal(2.0)); v.K != value.Real || v.Real() != 1.0 {
		t.Errorf("min mixed promotes to real: %v", v)
	}
}

func TestConversions(t *testing.T) {
	e, _ := env("")
	if v := evalB(t, e, "to_string", value.NewInt(42)); v.Str() != "42" {
		t.Errorf("to_string(42) = %q", v.Str())
	}
	if v := evalB(t, e, "to_int", value.NewString(" 17 ")); v.Int() != 17 {
		t.Errorf("to_int string = %v", v)
	}
	if v := evalB(t, e, "to_int", value.NewReal(3.9)); v.Int() != 3 {
		t.Errorf("to_int real truncates: %v", v)
	}
	if v := evalB(t, e, "to_int", value.NewBool(true)); v.Int() != 1 {
		t.Errorf("to_int bool = %v", v)
	}
	if v := evalB(t, e, "to_real", value.NewString("2.5")); v.Real() != 2.5 {
		t.Errorf("to_real string = %v", v)
	}
	if v := evalB(t, e, "to_real", value.NewInt(2)); v.Real() != 2.0 {
		t.Errorf("to_real int = %v", v)
	}
	if _, err := Lookup("to_int").Eval(e, []value.Value{value.NewString("xyz")}); err == nil {
		t.Error("to_int on garbage should fail")
	}
	if _, err := Lookup("to_real").Eval(e, []value.Value{value.NewString("xyz")}); err == nil {
		t.Error("to_real on garbage should fail")
	}
}

func TestStringBuiltins(t *testing.T) {
	e, _ := env("")
	s := value.NewString("Hello, World")
	if v := evalB(t, e, "substring", s, value.NewInt(0), value.NewInt(5)); v.Str() != "Hello" {
		t.Errorf("substring = %q", v.Str())
	}
	if _, err := Lookup("substring").Eval(e, []value.Value{s, value.NewInt(5), value.NewInt(2)}); err == nil {
		t.Error("reversed substring bounds should fail")
	}
	if _, err := Lookup("substring").Eval(e, []value.Value{s, value.NewInt(0), value.NewInt(99)}); err == nil {
		t.Error("out-of-range substring should fail")
	}
	if v := evalB(t, e, "to_upper", s); v.Str() != "HELLO, WORLD" {
		t.Errorf("to_upper = %q", v.Str())
	}
	if v := evalB(t, e, "to_lower", s); v.Str() != "hello, world" {
		t.Errorf("to_lower = %q", v.Str())
	}
	if v := evalB(t, e, "find", s, value.NewString("World")); v.Int() != 7 {
		t.Errorf("find = %v", v)
	}
	if v := evalB(t, e, "find", s, value.NewString("xyz")); v.Int() != -1 {
		t.Errorf("find missing = %v", v)
	}
	if v := evalB(t, e, "starts_with", s, value.NewString("Hello")); !v.Bool() {
		t.Error("starts_with")
	}
	if v := evalB(t, e, "ends_with", s, value.NewString("World")); !v.Bool() {
		t.Error("ends_with")
	}
	if v := evalB(t, e, "contains", s, value.NewString(", ")); !v.Bool() {
		t.Error("contains")
	}
	if v := evalB(t, e, "trim", value.NewString("  x \n")); v.Str() != "x" {
		t.Errorf("trim = %q", v.Str())
	}
	if v := evalB(t, e, "repeat", value.NewString("ab"), value.NewInt(3)); v.Str() != "ababab" {
		t.Errorf("repeat = %q", v.Str())
	}
	if _, err := Lookup("repeat").Eval(e, []value.Value{s, value.NewInt(-1)}); err == nil {
		t.Error("negative repeat should fail")
	}
	if v := evalB(t, e, "reverse", value.NewString("abc")); v.Str() != "cba" {
		t.Errorf("reverse = %q", v.Str())
	}
	if v := evalB(t, e, "reverse", value.NewString("héllo")); v.Str() != "olléh" {
		t.Errorf("unicode reverse = %q", v.Str())
	}
}

func TestSplitJoin(t *testing.T) {
	e, _ := env("")
	v := evalB(t, e, "split", value.NewString("a,b,c"), value.NewString(","))
	a := v.Array()
	if a.Len() != 3 || a.Get(1).Str() != "b" {
		t.Errorf("split = %v", v)
	}
	// Empty separator splits on whitespace.
	v2 := evalB(t, e, "split", value.NewString("  a  b "), value.NewString(""))
	if v2.Array().Len() != 2 {
		t.Errorf("split whitespace = %v", v2)
	}
	j := evalB(t, e, "join", v, value.NewString("-"))
	if j.Str() != "a-b-c" {
		t.Errorf("join = %q", j.Str())
	}
}

func TestSortBuiltin(t *testing.T) {
	e, _ := env("")
	arr := value.NewArray(value.FromSlice(types.IntType, []value.Value{
		value.NewInt(3), value.NewInt(1), value.NewInt(2),
	}))
	v := evalB(t, e, "sort", arr)
	got := v.Array()
	if got.Get(0).Int() != 1 || got.Get(1).Int() != 2 || got.Get(2).Int() != 3 {
		t.Errorf("sort = %v", v)
	}
	// Original untouched (sort returns a copy).
	if arr.Array().Get(0).Int() != 3 {
		t.Error("sort mutated its argument")
	}
	sv := evalB(t, e, "sort", value.NewArray(value.FromSlice(types.StringType, []value.Value{
		value.NewString("b"), value.NewString("a"),
	})))
	if sv.Array().Get(0).Str() != "a" {
		t.Errorf("string sort = %v", sv)
	}
}

// Property: sort yields a sorted permutation of its input.
func TestSortProperty(t *testing.T) {
	e, _ := env("")
	f := func(xs []int64) bool {
		elems := make([]value.Value, len(xs))
		for i, x := range xs {
			elems[i] = value.NewInt(x)
		}
		in := value.NewArray(value.FromSlice(types.IntType, elems))
		out, err := Lookup("sort").Eval(e, []value.Value{in})
		if err != nil {
			return false
		}
		got := out.Array()
		if got.Len() != len(xs) {
			return false
		}
		var back []int64
		for i := 0; i < got.Len(); i++ {
			back = append(back, got.Get(i).Int())
		}
		if !sort.SliceIsSorted(back, func(i, j int) bool { return back[i] < back[j] }) {
			return false
		}
		// Permutation check via sorted copies.
		want := append([]int64(nil), xs...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if back[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPush(t *testing.T) {
	e, _ := env("")
	arr := value.NewArray(value.NewArrayOf(types.RealType, 0))
	evalB(t, e, "push", arr, value.NewInt(3)) // int widens into [real]
	if arr.Array().Len() != 1 || arr.Array().Get(0).K != value.Real {
		t.Errorf("push widen failed: %v", arr)
	}
}

func TestCheckSignatures(t *testing.T) {
	cases := []struct {
		name string
		args []*types.Type
		want *types.Type // nil = void
		ok   bool
	}{
		{"print", []*types.Type{types.IntType, types.StringType}, nil, true},
		{"read_int", nil, types.IntType, true},
		{"read_int", []*types.Type{types.IntType}, nil, false},
		{"len", []*types.Type{types.ArrayOf(types.BoolType)}, types.IntType, true},
		{"len", []*types.Type{types.IntType}, nil, false},
		{"sqrt", []*types.Type{types.IntType}, types.RealType, true},
		{"sqrt", []*types.Type{types.StringType}, nil, false},
		{"abs", []*types.Type{types.IntType}, types.IntType, true},
		{"abs", []*types.Type{types.RealType}, types.RealType, true},
		{"min", []*types.Type{types.IntType, types.IntType}, types.IntType, true},
		{"min", []*types.Type{types.IntType, types.RealType}, types.RealType, true},
		{"min", []*types.Type{types.IntType}, nil, false},
		{"range", []*types.Type{types.IntType}, types.ArrayOf(types.IntType), true},
		{"range", []*types.Type{types.RealType}, nil, false},
		{"split", []*types.Type{types.StringType, types.StringType}, types.ArrayOf(types.StringType), true},
		{"join", []*types.Type{types.ArrayOf(types.StringType), types.StringType}, types.StringType, true},
		{"join", []*types.Type{types.ArrayOf(types.IntType), types.StringType}, nil, false},
		{"sort", []*types.Type{types.ArrayOf(types.IntType)}, types.ArrayOf(types.IntType), true},
		{"sort", []*types.Type{types.ArrayOf(types.ArrayOf(types.IntType))}, nil, false},
		{"push", []*types.Type{types.ArrayOf(types.RealType), types.IntType}, nil, true},
		{"push", []*types.Type{types.ArrayOf(types.IntType), types.StringType}, nil, false},
		{"sleep", []*types.Type{types.IntType}, nil, true},
		{"time_ms", nil, types.IntType, true},
		{"to_string", []*types.Type{types.ArrayOf(types.IntType)}, types.StringType, true},
	}
	for _, c := range cases {
		b := Lookup(c.name)
		if b == nil {
			t.Fatalf("no builtin %q", c.name)
		}
		got, err := b.Check(c.args)
		if c.ok && err != nil {
			t.Errorf("%s%v: unexpected error %v", c.name, c.args, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("%s%v: expected signature error", c.name, c.args)
			}
			continue
		}
		if !types.Equal(got, c.want) {
			t.Errorf("%s%v result = %v, want %v", c.name, c.args, got, c.want)
		}
	}
}

func TestConcurrentPrintAtomic(t *testing.T) {
	e, out := env("")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				evalB(t, e, "print", value.NewString("abcdefghij"))
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		if line != "abcdefghij" {
			t.Fatalf("interleaved print line %q", line)
		}
	}
}
