// Package stdlib implements Tetra's built-in function library.
//
// The paper's standard library is "extremely spartan ... basic I/O functions
// and functions for finding the lengths of strings and arrays" (§VI), with a
// richer math/string library listed as future work. This package implements
// both: the core builtins (print, read_*, len) and the future-work library
// (math, string handling, conversions, sort), so the reproduction covers the
// planned system as well as the published one.
//
// Each builtin carries a check-time signature function (consumed by
// internal/check) and a runtime implementation (shared by the tree-walking
// interpreter and the bytecode VM so the two backends cannot drift apart).
// The implementations here are dispatch and I/O only: the computational
// kernels — parsing, bounds rules, string operations, error wording —
// live in internal/sem, the semantics core shared with the compiled
// runtime (internal/gort), so all three backends evaluate identically.
package stdlib

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/guard"
	"repro/internal/sem"
	"repro/internal/types"
	"repro/internal/value"
)

// Builtin ids, used for fast dispatch. The order is frozen: bytecode embeds
// these ids.
const (
	Print = iota
	ReadInt
	ReadReal
	ReadString
	ReadBool
	Len
	Range
	Sqrt
	Sin
	Cos
	Tan
	Exp
	Log
	Abs
	Pow
	Floor
	Ceil
	Min
	Max
	ToString
	ToInt
	ToReal
	Substring
	ToUpper
	ToLower
	Find
	Split
	Join
	StartsWith
	EndsWith
	Trim
	Repeat
	Contains
	Reverse
	Sort
	Push
	Sleep
	TimeMS
	numBuiltins
)

// Env is the runtime context builtins execute in: program I/O streams. Out
// is guarded by a mutex because parallel Tetra threads may print
// concurrently; each print call is atomic with respect to other prints,
// matching what students observe from the C++ interpreter's cout usage at
// line granularity.
type Env struct {
	In  *bufio.Reader
	Out io.Writer

	outMu sync.Mutex
	guard *guard.Governor
}

// NewEnv returns an Env reading from in and writing to out.
func NewEnv(in io.Reader, out io.Writer) *Env {
	return &Env{In: bufio.NewReader(in), Out: out}
}

// SetGuard attaches a resource governor; print output and sleeps are then
// charged against (and interrupted by) its budgets.
func (e *Env) SetGuard(g *guard.Governor) { e.guard = g }

// Printf writes formatted output, serialized against other prints.
func (e *Env) Printf(format string, args ...any) {
	e.writeString(fmt.Sprintf(format, args...)) //nolint:errcheck // diagnostic output
}

// writeString writes raw output, serialized against other prints. The write
// is charged against the governor's output budget first; a write that would
// cross the budget is suppressed entirely so the budget is a hard cap.
func (e *Env) writeString(s string) error {
	if g := e.guard; g != nil {
		if k := g.AddOutput(len(s)); k != guard.OK {
			return g.Err(k)
		}
	}
	e.outMu.Lock()
	defer e.outMu.Unlock()
	io.WriteString(e.Out, s)
	return nil
}

// CheckFunc validates argument types and returns the result type (nil for
// void). It reports errors as plain messages; the checker attaches
// positions.
type CheckFunc func(args []*types.Type) (*types.Type, error)

// EvalFunc executes the builtin.
type EvalFunc func(env *Env, args []value.Value) (value.Value, error)

// Builtin describes one library function.
type Builtin struct {
	ID    int
	Name  string
	Check CheckFunc
	Eval  EvalFunc
}

var table [numBuiltins]*Builtin
var byName = make(map[string]*Builtin)

func register(id int, name string, check CheckFunc, eval EvalFunc) {
	b := &Builtin{ID: id, Name: name, Check: check, Eval: eval}
	table[id] = b
	byName[name] = b
}

// Lookup returns the builtin with the given name, or nil.
func Lookup(name string) *Builtin { return byName[name] }

// ByID returns the builtin with the given id.
func ByID(id int) *Builtin { return table[id] }

// Names returns all builtin names (for diagnostics and docs), in id order.
func Names() []string {
	out := make([]string, 0, numBuiltins)
	for _, b := range table {
		out = append(out, b.Name)
	}
	return out
}

// Signature helpers.

func exactly(n int, args []*types.Type) error {
	if len(args) != n {
		return fmt.Errorf("expects %d argument(s), got %d", n, len(args))
	}
	return nil
}

func numericArg(i int, args []*types.Type) error {
	if !args[i].IsNumeric() {
		return fmt.Errorf("argument %d must be int or real, got %s", i+1, args[i])
	}
	return nil
}

func stringArg(i int, args []*types.Type) error {
	if args[i].Kind() != types.String {
		return fmt.Errorf("argument %d must be string, got %s", i+1, args[i])
	}
	return nil
}

func intArg(i int, args []*types.Type) error {
	if args[i].Kind() != types.Int {
		return fmt.Errorf("argument %d must be int, got %s", i+1, args[i])
	}
	return nil
}

// checkNullary returns a signature accepting no arguments.
func checkNullary(result *types.Type) CheckFunc {
	return func(args []*types.Type) (*types.Type, error) {
		if err := exactly(0, args); err != nil {
			return nil, err
		}
		return result, nil
	}
}

// checkReal1 is numeric → real.
func checkReal1(args []*types.Type) (*types.Type, error) {
	if err := exactly(1, args); err != nil {
		return nil, err
	}
	if err := numericArg(0, args); err != nil {
		return nil, err
	}
	return types.RealType, nil
}

// checkStr1 is string → string.
func checkStr1(args []*types.Type) (*types.Type, error) {
	if err := exactly(1, args); err != nil {
		return nil, err
	}
	if err := stringArg(0, args); err != nil {
		return nil, err
	}
	return types.StringType, nil
}

// checkStr2Bool is (string, string) → bool.
func checkStr2Bool(args []*types.Type) (*types.Type, error) {
	if err := exactly(2, args); err != nil {
		return nil, err
	}
	if err := stringArg(0, args); err != nil {
		return nil, err
	}
	if err := stringArg(1, args); err != nil {
		return nil, err
	}
	return types.BoolType, nil
}

func realFn(f func(float64) float64) EvalFunc {
	return func(_ *Env, args []value.Value) (value.Value, error) {
		return value.NewReal(f(args[0].AsReal())), nil
	}
}

func init() {
	register(Print, "print",
		func(args []*types.Type) (*types.Type, error) { return nil, nil }, // variadic, any types
		func(env *Env, args []value.Value) (value.Value, error) {
			var sb strings.Builder
			for _, a := range args {
				sb.WriteString(a.String())
			}
			sb.WriteByte('\n')
			if err := env.writeString(sb.String()); err != nil {
				return value.Value{}, err
			}
			return value.Value{}, nil
		})

	register(ReadInt, "read_int", checkNullary(types.IntType),
		func(env *Env, args []value.Value) (value.Value, error) {
			var v int64
			if _, err := fmt.Fscan(env.In, &v); err != nil {
				return value.Value{}, fmt.Errorf("read_int: %v", err)
			}
			return value.NewInt(v), nil
		})

	register(ReadReal, "read_real", checkNullary(types.RealType),
		func(env *Env, args []value.Value) (value.Value, error) {
			var v float64
			if _, err := fmt.Fscan(env.In, &v); err != nil {
				return value.Value{}, fmt.Errorf("read_real: %v", err)
			}
			return value.NewReal(v), nil
		})

	// read_string reads the next input line. When a preceding read_int /
	// read_real / read_bool left only a newline on the current line, that
	// empty remainder is skipped — the classic scanf-then-getline trap
	// beginners hit, absorbed by the library instead of taught the hard way.
	register(ReadString, "read_string", checkNullary(types.StringType),
		func(env *Env, args []value.Value) (value.Value, error) {
			line, err := env.In.ReadString('\n')
			if strings.TrimRight(line, "\r\n") == "" && err == nil {
				line, err = env.In.ReadString('\n')
			}
			if err != nil && line == "" {
				return value.Value{}, fmt.Errorf("read_string: %v", err)
			}
			return value.NewString(strings.TrimRight(line, "\r\n")), nil
		})

	register(ReadBool, "read_bool", checkNullary(types.BoolType),
		func(env *Env, args []value.Value) (value.Value, error) {
			var s string
			if _, err := fmt.Fscan(env.In, &s); err != nil {
				return value.Value{}, fmt.Errorf("read_bool: %v", err)
			}
			if v, ok := sem.ParseBool(s); ok {
				return value.NewBool(v), nil
			}
			return value.Value{}, sem.ErrReadBool(s)
		})

	register(Len, "len",
		func(args []*types.Type) (*types.Type, error) {
			if err := exactly(1, args); err != nil {
				return nil, err
			}
			if !args[0].IsArray() && args[0].Kind() != types.String {
				return nil, fmt.Errorf("argument must be an array or string, got %s", args[0])
			}
			return types.IntType, nil
		},
		func(_ *Env, args []value.Value) (value.Value, error) {
			// Arrays count elements; strings count Unicode characters.
			return value.NewInt(sem.Length(args[0])), nil
		})

	register(Range, "range",
		func(args []*types.Type) (*types.Type, error) {
			if len(args) != 1 && len(args) != 2 {
				return nil, fmt.Errorf("expects 1 or 2 arguments, got %d", len(args))
			}
			for i := range args {
				if err := intArg(i, args); err != nil {
					return nil, err
				}
			}
			return types.ArrayOf(types.IntType), nil
		},
		func(env *Env, args []value.Value) (value.Value, error) {
			lo, hi := int64(0), int64(0)
			if len(args) == 1 {
				hi = args[0].Int() // range(n) = [0, n)
			} else {
				lo, hi = args[0].Int(), args[1].Int() // range(lo, hi) = [lo, hi)
			}
			n, err := sem.RangeNLen(lo, hi)
			if err != nil {
				return value.Value{}, err
			}
			if g := env.guard; g != nil {
				if k := g.AddAlloc(n); k != guard.OK {
					return value.Value{}, g.Err(k)
				}
			}
			a := value.NewArrayOf(types.IntType, int(n))
			for i := int64(0); i < n; i++ {
				a.Set(int(i), value.NewInt(lo+i))
			}
			return value.NewArray(a), nil
		})

	register(Sqrt, "sqrt", checkReal1, realFn(sem.Sqrt))
	register(Sin, "sin", checkReal1, realFn(sem.Sin))
	register(Cos, "cos", checkReal1, realFn(sem.Cos))
	register(Tan, "tan", checkReal1, realFn(sem.Tan))
	register(Exp, "exp", checkReal1, realFn(sem.Exp))
	register(Log, "log", checkReal1, realFn(sem.Log))

	register(Abs, "abs",
		func(args []*types.Type) (*types.Type, error) {
			if err := exactly(1, args); err != nil {
				return nil, err
			}
			if err := numericArg(0, args); err != nil {
				return nil, err
			}
			return args[0], nil // int→int, real→real
		},
		func(_ *Env, args []value.Value) (value.Value, error) {
			if args[0].K == value.Int {
				return value.NewInt(sem.AbsInt(args[0].Int())), nil
			}
			return value.NewReal(sem.AbsReal(args[0].Real())), nil
		})

	register(Pow, "pow",
		func(args []*types.Type) (*types.Type, error) {
			if err := exactly(2, args); err != nil {
				return nil, err
			}
			for i := 0; i < 2; i++ {
				if err := numericArg(i, args); err != nil {
					return nil, err
				}
			}
			return types.RealType, nil
		},
		func(_ *Env, args []value.Value) (value.Value, error) {
			return value.NewReal(sem.Pow(args[0].AsReal(), args[1].AsReal())), nil
		})

	register(Floor, "floor",
		func(args []*types.Type) (*types.Type, error) {
			if err := exactly(1, args); err != nil {
				return nil, err
			}
			if err := numericArg(0, args); err != nil {
				return nil, err
			}
			return types.IntType, nil
		},
		func(_ *Env, args []value.Value) (value.Value, error) {
			return value.NewInt(sem.Floor(args[0].AsReal())), nil
		})

	register(Ceil, "ceil",
		func(args []*types.Type) (*types.Type, error) {
			if err := exactly(1, args); err != nil {
				return nil, err
			}
			if err := numericArg(0, args); err != nil {
				return nil, err
			}
			return types.IntType, nil
		},
		func(_ *Env, args []value.Value) (value.Value, error) {
			return value.NewInt(sem.Ceil(args[0].AsReal())), nil
		})

	minMaxCheck := func(args []*types.Type) (*types.Type, error) {
		if len(args) < 2 {
			return nil, fmt.Errorf("expects at least 2 arguments, got %d", len(args))
		}
		allInt := true
		for i := range args {
			if err := numericArg(i, args); err != nil {
				return nil, err
			}
			if args[i].Kind() != types.Int {
				allInt = false
			}
		}
		if allInt {
			return types.IntType, nil
		}
		return types.RealType, nil
	}
	register(Min, "min", minMaxCheck,
		func(_ *Env, args []value.Value) (value.Value, error) {
			return minMaxEval(args, func(a, b float64) bool { return a < b }), nil
		})
	register(Max, "max", minMaxCheck,
		func(_ *Env, args []value.Value) (value.Value, error) {
			return minMaxEval(args, func(a, b float64) bool { return a > b }), nil
		})

	register(ToString, "to_string",
		func(args []*types.Type) (*types.Type, error) {
			if err := exactly(1, args); err != nil {
				return nil, err
			}
			return types.StringType, nil
		},
		func(_ *Env, args []value.Value) (value.Value, error) {
			return value.NewString(args[0].String()), nil
		})

	register(ToInt, "to_int",
		func(args []*types.Type) (*types.Type, error) {
			if err := exactly(1, args); err != nil {
				return nil, err
			}
			switch args[0].Kind() {
			case types.Int, types.Real, types.String, types.Bool:
				return types.IntType, nil
			}
			return nil, fmt.Errorf("cannot convert %s to int", args[0])
		},
		func(_ *Env, args []value.Value) (value.Value, error) {
			switch args[0].K {
			case value.Int:
				return args[0], nil
			case value.Real:
				return value.NewInt(sem.TruncReal(args[0].Real())), nil
			case value.Bool:
				return value.NewInt(sem.BoolToInt(args[0].Bool())), nil
			default:
				v, err := sem.ParseInt(args[0].Str())
				if err != nil {
					return value.Value{}, err
				}
				return value.NewInt(v), nil
			}
		})

	register(ToReal, "to_real",
		func(args []*types.Type) (*types.Type, error) {
			if err := exactly(1, args); err != nil {
				return nil, err
			}
			switch args[0].Kind() {
			case types.Int, types.Real, types.String:
				return types.RealType, nil
			}
			return nil, fmt.Errorf("cannot convert %s to real", args[0])
		},
		func(_ *Env, args []value.Value) (value.Value, error) {
			switch args[0].K {
			case value.Int, value.Real:
				return value.NewReal(args[0].AsReal()), nil
			default:
				v, err := sem.ParseReal(args[0].Str())
				if err != nil {
					return value.Value{}, err
				}
				return value.NewReal(v), nil
			}
		})

	register(Substring, "substring",
		func(args []*types.Type) (*types.Type, error) {
			if err := exactly(3, args); err != nil {
				return nil, err
			}
			if err := stringArg(0, args); err != nil {
				return nil, err
			}
			if err := intArg(1, args); err != nil {
				return nil, err
			}
			if err := intArg(2, args); err != nil {
				return nil, err
			}
			return types.StringType, nil
		},
		func(_ *Env, args []value.Value) (value.Value, error) {
			out, err := sem.Substring(args[0].Str(), args[1].Int(), args[2].Int())
			if err != nil {
				return value.Value{}, err
			}
			return value.NewString(out), nil
		})

	register(ToUpper, "to_upper", checkStr1,
		func(_ *Env, args []value.Value) (value.Value, error) {
			return value.NewString(sem.ToUpper(args[0].Str())), nil
		})
	register(ToLower, "to_lower", checkStr1,
		func(_ *Env, args []value.Value) (value.Value, error) {
			return value.NewString(sem.ToLower(args[0].Str())), nil
		})

	register(Find, "find",
		func(args []*types.Type) (*types.Type, error) {
			if err := exactly(2, args); err != nil {
				return nil, err
			}
			if err := stringArg(0, args); err != nil {
				return nil, err
			}
			if err := stringArg(1, args); err != nil {
				return nil, err
			}
			return types.IntType, nil
		},
		func(_ *Env, args []value.Value) (value.Value, error) {
			return value.NewInt(sem.Find(args[0].Str(), args[1].Str())), nil
		})

	register(Split, "split",
		func(args []*types.Type) (*types.Type, error) {
			if err := exactly(2, args); err != nil {
				return nil, err
			}
			if err := stringArg(0, args); err != nil {
				return nil, err
			}
			if err := stringArg(1, args); err != nil {
				return nil, err
			}
			return types.ArrayOf(types.StringType), nil
		},
		func(_ *Env, args []value.Value) (value.Value, error) {
			parts := sem.Split(args[0].Str(), args[1].Str())
			elems := make([]value.Value, len(parts))
			for i, p := range parts {
				elems[i] = value.NewString(p)
			}
			return value.NewArray(value.FromSlice(types.StringType, elems)), nil
		})

	register(Join, "join",
		func(args []*types.Type) (*types.Type, error) {
			if err := exactly(2, args); err != nil {
				return nil, err
			}
			if !args[0].IsArray() || args[0].Elem().Kind() != types.String {
				return nil, fmt.Errorf("argument 1 must be [string], got %s", args[0])
			}
			if err := stringArg(1, args); err != nil {
				return nil, err
			}
			return types.StringType, nil
		},
		func(_ *Env, args []value.Value) (value.Value, error) {
			a := args[0].Array()
			parts := make([]string, a.Len())
			for i := range parts {
				parts[i] = a.Get(i).Str()
			}
			return value.NewString(sem.Join(parts, args[1].Str())), nil
		})

	register(StartsWith, "starts_with", checkStr2Bool,
		func(_ *Env, args []value.Value) (value.Value, error) {
			return value.NewBool(sem.StartsWith(args[0].Str(), args[1].Str())), nil
		})
	register(EndsWith, "ends_with", checkStr2Bool,
		func(_ *Env, args []value.Value) (value.Value, error) {
			return value.NewBool(sem.EndsWith(args[0].Str(), args[1].Str())), nil
		})
	register(Contains, "contains", checkStr2Bool,
		func(_ *Env, args []value.Value) (value.Value, error) {
			return value.NewBool(sem.Contains(args[0].Str(), args[1].Str())), nil
		})

	register(Trim, "trim", checkStr1,
		func(_ *Env, args []value.Value) (value.Value, error) {
			return value.NewString(sem.Trim(args[0].Str())), nil
		})

	register(Repeat, "repeat",
		func(args []*types.Type) (*types.Type, error) {
			if err := exactly(2, args); err != nil {
				return nil, err
			}
			if err := stringArg(0, args); err != nil {
				return nil, err
			}
			if err := intArg(1, args); err != nil {
				return nil, err
			}
			return types.StringType, nil
		},
		func(_ *Env, args []value.Value) (value.Value, error) {
			out, err := sem.Repeat(args[0].Str(), args[1].Int())
			if err != nil {
				return value.Value{}, err
			}
			return value.NewString(out), nil
		})

	register(Reverse, "reverse", checkStr1,
		func(_ *Env, args []value.Value) (value.Value, error) {
			return value.NewString(sem.Reverse(args[0].Str())), nil
		})

	register(Sort, "sort",
		func(args []*types.Type) (*types.Type, error) {
			if err := exactly(1, args); err != nil {
				return nil, err
			}
			if !args[0].IsArray() {
				return nil, fmt.Errorf("argument must be an array, got %s", args[0])
			}
			switch args[0].Elem().Kind() {
			case types.Int, types.Real, types.String:
				return args[0], nil
			}
			return nil, fmt.Errorf("cannot sort %s (element type must be int, real or string)", args[0])
		},
		func(_ *Env, args []value.Value) (value.Value, error) {
			src := args[0].Array()
			elems := src.Values()
			sort.SliceStable(elems, func(i, j int) bool {
				a, b := elems[i], elems[j]
				if a.K == value.Str {
					return a.Str() < b.Str()
				}
				return a.AsReal() < b.AsReal()
			})
			return value.NewArray(value.FromSlice(src.Elem, elems)), nil
		})

	register(Push, "push",
		func(args []*types.Type) (*types.Type, error) {
			if err := exactly(2, args); err != nil {
				return nil, err
			}
			if !args[0].IsArray() {
				return nil, fmt.Errorf("argument 1 must be an array, got %s", args[0])
			}
			if !types.AssignableTo(args[1], args[0].Elem()) {
				return nil, fmt.Errorf("cannot push %s onto %s", args[1], args[0])
			}
			return nil, nil
		},
		func(_ *Env, args []value.Value) (value.Value, error) {
			v := args[1]
			a := args[0].Array()
			if a.Elem.Kind() == types.Real && v.K == value.Int {
				v = value.NewReal(float64(v.Int()))
			}
			a.Append(v)
			return value.Value{}, nil
		})

	register(Sleep, "sleep",
		func(args []*types.Type) (*types.Type, error) {
			if err := exactly(1, args); err != nil {
				return nil, err
			}
			if err := intArg(0, args); err != nil {
				return nil, err
			}
			return nil, nil
		},
		func(env *Env, args []value.Value) (value.Value, error) {
			ms := args[0].Int()
			if ms <= 0 {
				return value.Value{}, nil
			}
			d := time.Duration(ms) * time.Millisecond
			var g *guard.Governor
			if env != nil {
				g = env.guard
			}
			if g == nil {
				time.Sleep(d)
				return value.Value{}, nil
			}
			// Sleep in short slices so a tripped limit (deadline, cancel)
			// interrupts the sleep instead of outliving the run.
			const slice = 10 * time.Millisecond
			deadline := time.Now().Add(d)
			for {
				if k := g.Tripped(); k != guard.OK {
					return value.Value{}, g.Err(k)
				}
				remain := time.Until(deadline)
				if remain <= 0 {
					return value.Value{}, nil
				}
				if remain > slice {
					remain = slice
				}
				time.Sleep(remain)
			}
		})

	register(TimeMS, "time_ms", checkNullary(types.IntType),
		func(_ *Env, args []value.Value) (value.Value, error) {
			return value.NewInt(time.Now().UnixMilli()), nil
		})
}

func minMaxEval(args []value.Value, better func(a, b float64) bool) value.Value {
	best := args[0]
	allInt := best.K == value.Int
	for _, a := range args[1:] {
		if a.K != value.Int {
			allInt = false
		}
		if better(a.AsReal(), best.AsReal()) {
			best = a
		}
	}
	if allInt {
		return best
	}
	return value.NewReal(best.AsReal())
}
