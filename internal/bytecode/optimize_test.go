package bytecode

import (
	"testing"

	"repro/internal/value"
)

func optimizeSrc(t *testing.T, src string, level int) *Program {
	t.Helper()
	return Optimize(compileSrc(t, src), level)
}

// checkTargets asserts every jump target is inside the chunk (or exactly
// its end) — the invariant compact() must maintain.
func checkTargets(t *testing.T, bc *Program) {
	t.Helper()
	for fi, f := range bc.Funcs {
		for ci, ch := range f.Chunks {
			n := int32(len(ch.Code))
			for pc, ins := range ch.Code {
				bad := func(a int32) bool { return a < 0 || a > n }
				switch ins.Op {
				case OpJump, OpJumpIfFalse, OpJumpIfTrue:
					if bad(ins.A) {
						t.Errorf("func %d chunk %d pc %d: %s target %d out of [0,%d]", fi, ci, pc, ins.Op, ins.A, n)
					}
				case OpCmpJump, OpCmpConstJump:
					if bad(ins.Dst) {
						t.Errorf("func %d chunk %d pc %d: %s target %d out of [0,%d]", fi, ci, pc, ins.Op, ins.Dst, n)
					}
				case OpForIter:
					if bad(ins.B) {
						t.Errorf("func %d chunk %d pc %d: foriter target %d out of [0,%d]", fi, ci, pc, ins.B, n)
					}
				}
			}
			if len(ch.Pos) != len(ch.Code) {
				t.Errorf("func %d chunk %d: pos table length %d != code length %d", fi, ci, len(ch.Pos), len(ch.Code))
			}
		}
	}
}

func TestFoldConstantExpression(t *testing.T) {
	// 2 + 3 * 4 - 5 must collapse to one constant push at O1.
	bc := optimizeSrc(t, "def main():\n    print(2 + 3 * 4 - 5)\n", O1)
	ch := bc.Funcs[bc.MainIndex].Chunks[0]
	for _, op := range []Op{OpAdd, OpSub, OpMul} {
		if n := countOps(ch, op); n != 0 {
			t.Errorf("%d %s instruction(s) survive folding", n, op)
		}
	}
	found := false
	for _, ins := range ch.Code {
		if ins.Op == OpConst && value.Equal(bc.Funcs[bc.MainIndex].Consts[ins.A], value.NewInt(9)) {
			found = true
		}
	}
	if !found {
		t.Errorf("no OpConst 9 in folded chunk:\n%s", Disassemble(bc.Funcs[bc.MainIndex]))
	}
	checkTargets(t, bc)
}

func TestFoldUnaryAndBool(t *testing.T) {
	bc := optimizeSrc(t, "def main():\n    print(- -7, not false, 1.0 + 1)\n", O1)
	ch := bc.Funcs[bc.MainIndex].Chunks[0]
	for _, op := range []Op{OpNeg, OpNot, OpToReal, OpAdd} {
		if n := countOps(ch, op); n != 0 {
			t.Errorf("%d %s instruction(s) survive folding", n, op)
		}
	}
	checkTargets(t, bc)
}

func TestWhileTrueBecomesPlainLoop(t *testing.T) {
	// `while true:` compiles to a const-true load + jfalse per iteration;
	// folding must remove both so the loop header is a single unconditional
	// jump, leaving the body's `if i > 3` branch as the only conditional.
	src := "def main():\n    i = 0\n    while true:\n        i += 1\n        if i > 3:\n            break\n    print(i)\n"
	bc := optimizeSrc(t, src, O1)
	f := bc.Funcs[bc.MainIndex]
	ch := f.Chunks[0]
	for pc, ins := range ch.Code {
		if ins.Op == OpConst && f.Consts[ins.A].K == value.Bool {
			t.Errorf("pc %d: bool const load survives in while-true loop", pc)
		}
	}
	if n := countOps(ch, OpJumpIfFalse) + countOps(ch, OpJumpIfTrue); n != 1 {
		t.Errorf("%d conditional jump(s) survive; want 1 (the if, not the while header):\n%s",
			n, Disassemble(f))
	}
	checkTargets(t, bc)
}

func TestDeadCodeAfterReturn(t *testing.T) {
	// Both branches return, so the chunk-end fallthrough return path and
	// any post-if code are unreachable.
	src := "def f(x int) int:\n    if x > 0:\n        return 1\n    else:\n        return 2\n    print(\"unreachable\")\n\ndef main():\n    print(f(1))\n"
	bc0 := compileSrc(t, src)
	bc := optimizeSrc(t, src, O1)
	n0 := len(bc0.Funcs[0].Chunks[0].Code)
	n1 := len(bc.Funcs[0].Chunks[0].Code)
	if n1 >= n0 {
		t.Errorf("dead code not removed: %d -> %d instructions", n0, n1)
	}
	checkTargets(t, bc)
}

func TestFoldRefusesDivisionByZero(t *testing.T) {
	// Constant division/modulo by zero must survive to run time so the
	// program raises the positioned error, on ints and reals alike.
	cases := []struct {
		name, src string
		op        Op
	}{
		{"int_div", "def main():\n    print(1 / 0)\n", OpDiv},
		{"int_mod", "def main():\n    print(1 % 0)\n", OpMod},
		{"real_div", "def main():\n    print(1.5 / 0.0)\n", OpDiv},
		{"real_mod", "def main():\n    print(1.5 % 0.0)\n", OpMod},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bc := optimizeSrc(t, c.src, O1)
			ch := bc.Funcs[bc.MainIndex].Chunks[0]
			if countOps(ch, c.op) == 0 {
				t.Errorf("%s folded away; must raise at run time:\n%s", c.op, Disassemble(bc.Funcs[bc.MainIndex]))
			}
		})
	}
}

func TestFusionOnlyAtO2(t *testing.T) {
	src := "def main():\n    i = 0\n    while i < 10:\n        i += 1\n    print(i)\n"
	bc1 := optimizeSrc(t, src, O1)
	ch1 := bc1.Funcs[bc1.MainIndex].Chunks[0]
	fused := func(ch Chunk) int {
		return countOps(ch, OpCmpJump) + countOps(ch, OpCmpConstJump) +
			countOps(ch, OpArithConst) + countOps(ch, OpArithConstL)
	}
	if fused(ch1) != 0 {
		t.Error("fused opcodes emitted at O1")
	}
	bc2 := optimizeSrc(t, src, O2)
	ch2 := bc2.Funcs[bc2.MainIndex].Chunks[0]
	if countOps(ch2, OpCmpJump)+countOps(ch2, OpCmpConstJump) == 0 {
		t.Errorf("no fused compare-jump at O2 for a compare-headed while loop:\n%s", Disassemble(bc2.Funcs[bc2.MainIndex]))
	}
	if countOps(ch2, OpArithConst) == 0 {
		t.Errorf("no arithconst at O2 for i += 1:\n%s", Disassemble(bc2.Funcs[bc2.MainIndex]))
	}
	if len(ch2.Code) >= len(ch1.Code) {
		t.Errorf("fusion did not shrink code: O1=%d O2=%d", len(ch1.Code), len(ch2.Code))
	}
	checkTargets(t, bc1)
	checkTargets(t, bc2)
}

func TestO0IsIdentity(t *testing.T) {
	src := "def main():\n    print(2 + 3)\n"
	bc0 := compileSrc(t, src)
	before := len(bc0.Funcs[bc0.MainIndex].Chunks[0].Code)
	Optimize(bc0, O0)
	if after := len(bc0.Funcs[bc0.MainIndex].Chunks[0].Code); after != before {
		t.Errorf("O0 changed the code: %d -> %d instructions", before, after)
	}
}

func TestOptimizeParallelChunks(t *testing.T) {
	// Sub-chunks (parallel bodies) are optimized too, and OpParallel's
	// chunk references are untouched by compaction (they index chunks, not
	// pcs).
	src := "def main():\n    a = 0\n    b = 0\n    parallel:\n        a = 2 + 3\n        b = 4 * 5\n    print(a + b)\n"
	bc := optimizeSrc(t, src, O2)
	f := bc.Funcs[bc.MainIndex]
	if len(f.Chunks) < 3 {
		t.Fatalf("expected parallel sub-chunks, got %d chunk(s)", len(f.Chunks))
	}
	for ci := 1; ci < len(f.Chunks); ci++ {
		if n := countOps(f.Chunks[ci], OpAdd) + countOps(f.Chunks[ci], OpMul); n != 0 {
			t.Errorf("chunk %d: %d unfolded arith op(s)", ci, n)
		}
	}
	checkTargets(t, bc)
}
