package bytecode

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/parser"
)

func compileSrc(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := parser.Parse("test.ttr", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := check.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	bc, err := Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return bc
}

func countOps(ch Chunk, op Op) int {
	n := 0
	for _, ins := range ch.Code {
		if ins.Op == op {
			n++
		}
	}
	return n
}

func TestMainIndex(t *testing.T) {
	bc := compileSrc(t, "def helper():\n    pass\n\ndef main():\n    pass\n")
	if bc.MainIndex != 1 {
		t.Errorf("MainIndex = %d, want 1", bc.MainIndex)
	}
	bc2 := compileSrc(t, "def f():\n    pass\n")
	if bc2.MainIndex != -1 {
		t.Errorf("MainIndex = %d, want -1", bc2.MainIndex)
	}
}

func TestConstPooling(t *testing.T) {
	bc := compileSrc(t, "def main():\n    x = 7\n    y = 7\n    z = 7\n    print(x + y + z)\n")
	f := bc.Funcs[0]
	count7 := 0
	for _, c := range f.Consts {
		if c.Int() == 7 {
			count7++
		}
	}
	if count7 != 1 {
		t.Errorf("constant 7 pooled %d times, want 1", count7)
	}
}

func TestJumpTargetsInRange(t *testing.T) {
	bc := compileSrc(t, `def f(x int) int:
    total = 0
    for i in [1 .. x]:
        if i % 2 == 0:
            continue
        if i > 50:
            break
        total += i
    while total > 100:
        total -= 10
    return total

def main():
    print(f(10))
`)
	for _, fn := range bc.Funcs {
		for ci, ch := range fn.Chunks {
			for pc, ins := range ch.Code {
				switch ins.Op {
				case OpJump, OpJumpIfFalse, OpJumpIfTrue:
					if ins.A < 0 || int(ins.A) > len(ch.Code) {
						t.Errorf("%s chunk %d pc %d: jump target %d out of range [0, %d]",
							fn.Name, ci, pc, ins.A, len(ch.Code))
					}
				case OpForIter:
					if ins.B < 0 || int(ins.B) > len(ch.Code) {
						t.Errorf("%s chunk %d pc %d: foriter exit %d out of range", fn.Name, ci, pc, ins.B)
					}
				}
			}
			if len(ch.Code) != len(ch.Pos) {
				t.Errorf("%s chunk %d: Code/Pos length mismatch", fn.Name, ci)
			}
		}
	}
}

func TestParallelCompilesToSubChunks(t *testing.T) {
	bc := compileSrc(t, `def main():
    parallel:
        print(1)
        print(2)
        print(3)
`)
	f := bc.Funcs[0]
	if len(f.Chunks) != 4 { // body + 3 children
		t.Fatalf("got %d chunks, want 4", len(f.Chunks))
	}
	var par *Instr
	for i, ins := range f.Chunks[0].Code {
		if ins.Op == OpParallel {
			par = &f.Chunks[0].Code[i]
		}
	}
	if par == nil {
		t.Fatal("no OpParallel in body")
	}
	if par.A != 1 || par.B != 3 {
		t.Errorf("OpParallel operands = (%d, %d), want (1, 3)", par.A, par.B)
	}
	if !f.Shared {
		t.Error("function with parallel not marked shared")
	}
}

func TestParallelForCompilation(t *testing.T) {
	bc := compileSrc(t, `def main():
    parallel for i in [1 .. 3]:
        print(i)
`)
	f := bc.Funcs[0]
	if len(f.Chunks) != 2 {
		t.Fatalf("got %d chunks", len(f.Chunks))
	}
	found := false
	for _, ins := range f.Chunks[0].Code {
		if ins.Op == OpParFor {
			found = true
			if ins.A != 1 {
				t.Errorf("OpParFor chunk = %d, want 1", ins.A)
			}
		}
	}
	if !found {
		t.Error("no OpParFor emitted")
	}
}

func TestLockBalanced(t *testing.T) {
	bc := compileSrc(t, `def main():
    lock m:
        print(1)
    lock m:
        print(2)
`)
	body := bc.Funcs[0].Chunks[0]
	if a, r := countOps(body, OpLockAcquire), countOps(body, OpLockRelease); a != 2 || r != 2 {
		t.Errorf("acquire/release = %d/%d, want 2/2", a, r)
	}
}

func TestReturnInsideLockReleases(t *testing.T) {
	bc := compileSrc(t, `def f() int:
    lock m:
        return 1

def main():
    print(f())
`)
	body := bc.Funcs[0].Chunks[0]
	// One release on the return path plus one on the normal path.
	if r := countOps(body, OpLockRelease); r != 2 {
		t.Errorf("releases = %d, want 2 (early-return + fallthrough)", r)
	}
}

func TestReturnInsideNestedLocksReleasesAll(t *testing.T) {
	bc := compileSrc(t, `def f() int:
    lock a:
        lock b:
            return 1

def main():
    print(f())
`)
	body := bc.Funcs[0].Chunks[0]
	// Return path releases b then a; normal path releases b and a: 4 total.
	if r := countOps(body, OpLockRelease); r != 4 {
		t.Errorf("releases = %d, want 4", r)
	}
}

func TestBreakInsideLockReleases(t *testing.T) {
	bc := compileSrc(t, `def main():
    x = 0
    while x < 10:
        lock m:
            if x == 5:
                break
            x += 1
`)
	body := bc.Funcs[0].Chunks[0]
	// Break path releases m; normal loop path releases m.
	if r := countOps(body, OpLockRelease); r != 2 {
		t.Errorf("releases = %d, want 2", r)
	}
}

func TestBreakOutsideLockDoesNotRelease(t *testing.T) {
	bc := compileSrc(t, `def main():
    lock m:
        x = 0
        while x < 10:
            if x == 5:
                break
            x += 1
`)
	body := bc.Funcs[0].Chunks[0]
	// The lock was acquired before the loop; break must NOT release it.
	if r := countOps(body, OpLockRelease); r != 1 {
		t.Errorf("releases = %d, want 1 (only the block exit)", r)
	}
}

func TestForIterStateInTemps(t *testing.T) {
	bc := compileSrc(t, `def main():
    for i in [1 .. 3]:
        print(i)
`)
	f := bc.Funcs[0]
	// Only i occupies a variable slot; the iteration state (seq, idx)
	// lives in activation-private temporaries, so a for-in inside a
	// parallel-for body can never race across iterations.
	if f.NumSlots != 1 {
		t.Errorf("NumSlots = %d, want 1 (just i)", f.NumSlots)
	}
	if f.Chunks[0].NumTemps < 2 {
		t.Errorf("NumTemps = %d, want >= 2 (seq, idx)", f.Chunks[0].NumTemps)
	}
	var iter *Instr
	for pc, ins := range f.Chunks[0].Code {
		if ins.Op == OpForIter {
			iter = &f.Chunks[0].Code[pc]
		}
	}
	if iter == nil {
		t.Fatal("no OpForIter emitted")
	}
	if int(iter.A) < f.NumSlots {
		t.Errorf("foriter state base r%d is a variable slot; want a temp", iter.A)
	}
}

func TestSharedFlagPropagation(t *testing.T) {
	bc := compileSrc(t, `def seq() int:
    return 1

def par():
    background:
        print(seq())

def main():
    par()
`)
	if bc.Funcs[0].Shared {
		t.Error("seq marked shared")
	}
	if !bc.Funcs[1].Shared {
		t.Error("par not marked shared")
	}
}

func TestOpStringCoverage(t *testing.T) {
	for op := OpNop; op <= OpCmpConstJump; op++ {
		s := op.String()
		if strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no mnemonic", int(op))
		}
	}
	if Op(200).String() != "op(200)" {
		t.Error("unknown opcode formatting")
	}
}

func TestAllFunctionsEndWithReturn(t *testing.T) {
	bc := compileSrc(t, `def f() int:
    return 1

def g():
    print(1)

def main():
    g()
    print(f())
`)
	for _, fn := range bc.Funcs {
		for ci, ch := range fn.Chunks {
			if len(ch.Code) == 0 {
				t.Errorf("%s chunk %d empty", fn.Name, ci)
				continue
			}
			last := ch.Code[len(ch.Code)-1].Op
			if last != OpReturn && last != OpReturnNone {
				t.Errorf("%s chunk %d ends with %s", fn.Name, ci, last)
			}
		}
	}
}

func TestElifChainCompiles(t *testing.T) {
	bc := compileSrc(t, `def f(x int) int:
    if x == 1:
        return 10
    elif x == 2:
        return 20
    else:
        return 30

def main():
    print(f(2))
`)
	_ = bc
	// Structure validated by the VM differential tests; here we only assert
	// compilation succeeded and produced jumps.
	if countOps(bc.Funcs[0].Chunks[0], OpJumpIfFalse) < 2 {
		t.Error("elif chain lost its conditional jumps")
	}
}

func TestDisassembleFormat(t *testing.T) {
	bc := compileSrc(t, "def main():\n    parallel:\n        print(1)\n")
	text := Disassemble(bc.Funcs[0])
	if !strings.Contains(text, "chunk 0") || !strings.Contains(text, "chunk 1") {
		t.Errorf("disassembly lacks chunks:\n%s", text)
	}
	if !strings.Contains(text, "parallel") {
		t.Errorf("disassembly lacks parallel op:\n%s", text)
	}
}

func TestProgramWithAllConstructs(t *testing.T) {
	// One program exercising every statement kind must compile cleanly.
	src := `def worker(n int) int:
    total = 0
    for i in [1 .. n]:
        if i % 2 == 0:
            continue
        total += i
    return total

def main():
    results = range(4)
    parallel for w in range(4):
        results[w] = worker(w + 10)
    parallel:
        a = worker(5)
        b = worker(6)
    background:
        print("bg")
    lock m:
        c = a + b
    x = 0
    while x < 3:
        x += 1
        if x == 2:
            break
    print(results[0] + c + x)
`
	bc := compileSrc(t, src)
	main := bc.Funcs[1]
	if len(main.Chunks) < 4 {
		t.Errorf("main has %d chunks, want >= 4 (parfor + 2 parallel + background)", len(main.Chunks))
	}
	checkStmt := 0
	for _, ch := range main.Chunks {
		checkStmt += len(ch.Code)
	}
	if checkStmt == 0 {
		t.Error("no code emitted")
	}
}
