package bytecode

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Disassemble renders a compiled function for review, debugging and
// golden tests (`tetracompile -dis`). The format is line-oriented and
// stable: one instruction per line, pc in column one, mnemonic in column
// two, then the operands. Registers print as r<n>, with the variable's
// source name appended (r0=i) when the function carries slot names;
// constant operands and the optimizer's fused opcodes get a trailing
// comment spelling out their meaning, and call instructions show their
// inline-cache site id.
func Disassemble(f *Func) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (params=%d slots=%d shared=%v)\n", f.Name, f.NumParams, f.NumSlots, f.Shared)
	for ci := range f.Chunks {
		ch := &f.Chunks[ci]
		fmt.Fprintf(&sb, " chunk %d: (temps=%d)\n", ci, ch.NumTemps)
		for pc, ins := range ch.Code {
			fmt.Fprintf(&sb, "  %4d %-10s %s\n", pc, ins.Op, operands(f, ins))
		}
	}
	return sb.String()
}

// reg renders a register operand, naming variable slots when the
// compiler recorded their source names.
func (f *Func) reg(i int32) string {
	if int(i) < len(f.SlotNames) && f.SlotNames[i] != "" {
		return fmt.Sprintf("r%d=%s", i, f.SlotNames[i])
	}
	return fmt.Sprintf("r%d", i)
}

func (f *Func) constStr(i int32) string {
	if int(i) < len(f.Consts) {
		c := f.Consts[i]
		if c.K == value.Str {
			return fmt.Sprintf("%q", c.Str())
		}
		return c.String()
	}
	return "?"
}

// operands renders one instruction's operand list per the opcode's
// encoding.
func operands(f *Func, ins Instr) string {
	r := f.reg
	switch ins.Op {
	case OpNop, OpReturnNone:
		return ""
	case OpConst:
		return fmt.Sprintf("%s, %s", r(ins.Dst), f.constStr(ins.A))
	case OpMove, OpToReal, OpNeg, OpNot:
		return fmt.Sprintf("%s, %s", r(ins.Dst), r(ins.A))
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return fmt.Sprintf("%s, %s, %s", r(ins.Dst), r(ins.A), r(ins.B))
	case OpJump:
		return fmt.Sprintf("-> %d", ins.A)
	case OpJumpIfFalse, OpJumpIfTrue:
		return fmt.Sprintf("%s -> %d", r(ins.B), ins.A)
	case OpCall:
		return fmt.Sprintf("%s, fn#%d, args %s..#%d   ; ic site %d", dst(f, ins.Dst), ins.A, r(ins.B), ins.C, ins.S)
	case OpCallBuiltin:
		return fmt.Sprintf("%s, builtin#%d, args %s..#%d   ; ic site %d", dst(f, ins.Dst), ins.A, r(ins.B), ins.C, ins.S)
	case OpReturn:
		return r(ins.A)
	case OpIndex:
		return fmt.Sprintf("%s, %s[%s]", r(ins.Dst), r(ins.A), r(ins.B))
	case OpSetIndex:
		return fmt.Sprintf("%s[%s] = %s", r(ins.A), r(ins.B), r(ins.C))
	case OpArray:
		return fmt.Sprintf("%s, %s..#%d, type#%d", r(ins.Dst), r(ins.A), ins.B, ins.C)
	case OpRange:
		return fmt.Sprintf("%s, [%s .. %s]", r(ins.Dst), r(ins.A), r(ins.B))
	case OpForIter:
		return fmt.Sprintf("%s, state %s, exit -> %d", r(ins.Dst), r(ins.A), ins.B)
	case OpParallel, OpBackground:
		return fmt.Sprintf("chunks [%d, %d)", ins.A, ins.A+ins.B)
	case OpParFor:
		return fmt.Sprintf("chunk %d, seq %s, var %s", ins.A, r(ins.B), r(ins.C))
	case OpLockAcquire, OpLockRelease:
		return fmt.Sprintf("lock#%d", ins.A)
	case OpArithConst:
		return fmt.Sprintf("%s, %s, %s   ; %s = %s %s %s", r(ins.Dst), r(ins.A), f.constStr(ins.B),
			r(ins.Dst), r(ins.A), Op(ins.C), f.constStr(ins.B))
	case OpArithConstL:
		return fmt.Sprintf("%s, %s, %s   ; %s = %s %s %s", r(ins.Dst), f.constStr(ins.B), r(ins.A),
			r(ins.Dst), f.constStr(ins.B), Op(ins.C), r(ins.A))
	case OpCmpJump:
		cmp, sense := UnpackCmp(ins.C)
		return fmt.Sprintf("%s, %s -> %d   ; jump if %s %s", r(ins.A), r(ins.B), ins.Dst, cmp, senseStr(sense))
	case OpCmpConstJump:
		cmp, constLeft, sense := UnpackCmpConst(ins.C)
		l, rr := f.reg(ins.A), f.constStr(ins.B)
		if constLeft {
			l, rr = rr, l
		}
		return fmt.Sprintf("%s, %s -> %d   ; jump if %s %s", l, rr, ins.Dst, cmp, senseStr(sense))
	}
	return fmt.Sprintf("%d %d %d %d", ins.Dst, ins.A, ins.B, ins.C)
}

// dst renders a call destination, which may be -1 (value discarded).
func dst(f *Func, d int32) string {
	if d < 0 {
		return "_"
	}
	return f.reg(d)
}

func senseStr(sense bool) string {
	if sense {
		return "true"
	}
	return "false"
}

// DisassembleProgram renders every function of a compiled program.
func DisassembleProgram(p *Program) string {
	var sb strings.Builder
	for i, f := range p.Funcs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(Disassemble(f))
	}
	if len(p.LockNames) > 0 {
		fmt.Fprintf(&sb, "\nlocks: %s\n", strings.Join(p.LockNames, ", "))
	}
	fmt.Fprintf(&sb, "sites: %d\n", p.NumSites)
	return sb.String()
}
