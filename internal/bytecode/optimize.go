package bytecode

// The optimizer pipeline over the register IR. Compiled chunks pass
// through five phases, each preserving observable program behaviour
// exactly (output bytes, runtime errors and their positions, parallel
// semantics):
//
//  1. constant folding +  — a per-basic-block dataflow pass tracks which
//     copy propagation       registers hold statically known values and
//                            which are pure copies of other registers.
//                            Arithmetic, comparisons, unary ops and
//                            branches over known registers collapse at
//                            compile time; copy reads are redirected to
//                            the original register. Folds evaluate by
//                            calling internal/sem — the same kernels the
//                            VM dispatches to at run time, so compile-time
//                            and run-time results are identical by
//                            construction — and are refused whenever the
//                            runtime would raise (division or modulo by
//                            zero, on ints AND reals), so the error
//                            surfaces at run time with its position.
//                            Variable slots participate only in functions
//                            without parallelism: a shared frame's slots
//                            are cells other threads may write, and
//                            folding them would change what a racy
//                            program can observe.
//  2. dead-store removal  — writes to temporaries that no path reads
//                            before the next write are deleted (only for
//                            instructions that cannot raise). This is
//                            what sweeps up the constant producers phase
//                            1 leaves behind.
//  3. jump threading      — a jump whose target is another unconditional
//                            jump is retargeted to the final destination.
//  4. dead-code removal   — instructions unreachable from the chunk entry
//                            are deleted, with all jump targets remapped.
//  5. superinstruction    — compare+branch pairs fuse into OpCmpJump,
//     fusion                 then a constant operand folds into
//                            OpCmpConstJump, and const+arith pairs into
//                            OpArithConst/OpArithConstL. With a variable
//                            slot as both destination and source
//                            (`i = i + 1`) the arith-const form is the
//                            load-arith-store superinstruction: one
//                            dispatch for what the stack IR spent five on.
//                            Each fusion is gated by a FusionMask bit so
//                            the benchmark harness can measure what every
//                            superinstruction is worth on its own.
//
// Every phase is differentially verified: the golden corpus and the
// cross-backend differential tests must produce byte-identical output at
// O0, O1 and O2 (see internal/vm's optimizer differential tests and the
// CI step running the corpus at all levels).

import (
	"repro/internal/sem"
	"repro/internal/value"
)

// Optimization levels.
const (
	O0 = 0 // no optimization: execute exactly what the compiler emitted
	O1 = 1 // folding + copy propagation + dead stores + jump threading + DCE
	O2 = 2 // O1 plus superinstruction fusion

	// DefaultLevel is what the fast path uses unless told otherwise.
	DefaultLevel = O2
)

// FusionMask selects which superinstructions fusion may emit; the
// benchmark harness isolates each one's contribution by masking the
// others off. Optimize uses FuseAll.
type FusionMask uint

const (
	FuseCmpJump    FusionMask = 1 << iota // compare + branch → OpCmpJump
	FuseCmpConst                          // OpConst + OpCmpJump → OpCmpConstJump
	FuseArithConst                        // OpConst + arith → OpArithConst/L

	FuseAll = FuseCmpJump | FuseCmpConst | FuseArithConst
)

// Optimize runs the optimizer pipeline over every chunk of every function
// at the given level, mutating and returning p. Level <= 0 is a no-op;
// levels above O2 clamp to O2.
func Optimize(p *Program, level int) *Program {
	return OptimizeWith(p, level, FuseAll)
}

// OptimizeWith is Optimize with an explicit superinstruction mask; the
// mask only matters at O2.
func OptimizeWith(p *Program, level int, mask FusionMask) *Program {
	if level <= O0 {
		return p
	}
	for _, f := range p.Funcs {
		for ci := range f.Chunks {
			optimizeChunk(f, &f.Chunks[ci], level, mask)
		}
	}
	return p
}

func optimizeChunk(f *Func, ch *Chunk, level int, mask FusionMask) {
	// Folding can expose more folds (e.g. 1+2+3), dead-store removal can
	// expose more dead stores, and threading can expose more dead code, so
	// iterate O1 to a fixpoint. Each round strictly shrinks the chunk or
	// changes nothing, so termination is immediate.
	for {
		changed := foldConstants(f, ch)
		changed = removeDeadStores(f, ch) || changed
		changed = threadJumps(ch) || changed
		changed = removeDeadCode(ch) || changed
		if !changed {
			break
		}
	}
	if level >= O2 {
		if mask&FuseCmpJump != 0 {
			fuseCmpJump(f, ch)
		}
		if mask&FuseCmpConst != 0 {
			fuseCmpConst(f, ch)
		}
		if mask&FuseArithConst != 0 {
			fuseArithConst(f, ch)
		}
	}
}

// jumpTargets returns, for each pc, whether some instruction jumps there.
// Facts must be dropped at a target (another predecessor may arrive with
// different register contents), and fusion windows may not span one.
func jumpTargets(ch *Chunk) []bool {
	t := make([]bool, len(ch.Code)+1)
	mark := func(a int32) {
		if a >= 0 && int(a) <= len(ch.Code) {
			t[a] = true
		}
	}
	for _, ins := range ch.Code {
		switch ins.Op {
		case OpJump, OpJumpIfFalse, OpJumpIfTrue:
			mark(ins.A)
		case OpCmpJump, OpCmpConstJump:
			mark(ins.Dst)
		case OpForIter:
			mark(ins.B)
		}
	}
	return t
}

// semOps maps the foldable binary opcodes to their sem operators. The
// folder evaluates through internal/sem so compile-time folding and VM
// execution share one implementation.
var semOps = map[Op]sem.Op{
	OpAdd: sem.Add, OpSub: sem.Sub, OpMul: sem.Mul, OpDiv: sem.Div, OpMod: sem.Mod,
	OpEq: sem.Eq, OpNe: sem.Ne, OpLt: sem.Lt, OpLe: sem.Le, OpGt: sem.Gt, OpGe: sem.Ge,
}

// foldBinary evaluates l op r via the shared semantics core. ok is false
// when the expression must be left for run time: division or modulo by
// zero (int AND real — both raise), non-constant kinds, or oversized
// string concatenation (sem.MaxFoldedString).
func foldBinary(op Op, l, r value.Value) (v value.Value, ok bool) {
	return sem.FoldBinary(semOps[op], l, r)
}

func isArith(op Op) bool {
	return op == OpAdd || op == OpSub || op == OpMul || op == OpDiv || op == OpMod
}

func isCompare(op Op) bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// foldConstants runs the per-block constant and copy tracking pass,
// rewriting instructions in place (consumed ones become OpNop), then
// compacts. Reports whether anything changed.
func foldConstants(f *Func, ch *Chunk) bool {
	targets := jumpTargets(ch)
	code := ch.Code
	changed := false

	// known maps a register to its statically known value; copyOf maps a
	// register to the register it currently duplicates. Only trackable
	// registers appear: temporaries always, variable slots only when the
	// frame cannot be shared with another thread.
	known := make(map[int32]value.Value)
	copyOf := make(map[int32]int32)
	trackable := func(r int32) bool { return int(r) >= f.NumSlots || !f.Shared }
	// kill forgets everything involving register r, called when r is
	// written (or may be).
	kill := func(r int32) {
		delete(known, r)
		delete(copyOf, r)
		for d, s := range copyOf {
			if s == r {
				delete(copyOf, d)
			}
		}
	}
	reset := func() {
		known = make(map[int32]value.Value)
		copyOf = make(map[int32]int32)
	}
	// subst redirects a read of a copy to the original register.
	subst := func(pr *int32) {
		if s, ok := copyOf[*pr]; ok && s != *pr {
			*pr = s
			changed = true
		}
	}
	setConst := func(pc int, dst int32, v value.Value) {
		code[pc] = Instr{Op: OpConst, Dst: dst, A: f.constIndex(v)}
		kill(dst)
		if trackable(dst) {
			known[dst] = v
		}
		changed = true
	}

	for pc := 0; pc < len(code); pc++ {
		if targets[pc] {
			reset()
		}
		ins := &code[pc]
		switch {
		case ins.Op == OpConst:
			v := f.Consts[ins.A]
			kill(ins.Dst)
			if trackable(ins.Dst) {
				known[ins.Dst] = v
			}

		case ins.Op == OpMove:
			subst(&ins.A)
			if v, ok := known[ins.A]; ok {
				setConst(pc, ins.Dst, v)
				continue
			}
			kill(ins.Dst)
			if trackable(ins.A) && trackable(ins.Dst) {
				copyOf[ins.Dst] = ins.A
			}

		case ins.Op == OpToReal:
			subst(&ins.A)
			if v, ok := known[ins.A]; ok && (v.K == value.Int || v.K == value.Real) {
				setConst(pc, ins.Dst, sem.ToReal(v))
				continue
			}
			kill(ins.Dst)

		case ins.Op == OpNeg:
			subst(&ins.A)
			if v, ok := known[ins.A]; ok {
				if fv, fok := sem.FoldNeg(v); fok {
					setConst(pc, ins.Dst, fv)
					continue
				}
			}
			kill(ins.Dst)

		case ins.Op == OpNot:
			subst(&ins.A)
			if v, ok := known[ins.A]; ok {
				if fv, fok := sem.FoldNot(v); fok {
					setConst(pc, ins.Dst, fv)
					continue
				}
			}
			kill(ins.Dst)

		case isArith(ins.Op) || isCompare(ins.Op):
			subst(&ins.A)
			subst(&ins.B)
			va, oka := known[ins.A]
			vb, okb := known[ins.B]
			if oka && okb {
				if v, ok := foldBinary(ins.Op, va, vb); ok {
					setConst(pc, ins.Dst, v)
					continue
				}
			}
			kill(ins.Dst)

		case ins.Op == OpJumpIfFalse || ins.Op == OpJumpIfTrue:
			subst(&ins.B)
			if v, ok := known[ins.B]; ok && v.K == value.Bool {
				// Constant condition → unconditional jump or fall-through.
				// This is what turns `while true:` into a plain loop.
				taken := v.Bool() == (ins.Op == OpJumpIfTrue)
				if taken {
					code[pc] = Instr{Op: OpJump, A: ins.A}
				} else {
					code[pc] = Instr{Op: OpNop}
				}
				changed = true
			}

		case ins.Op == OpIndex:
			subst(&ins.A)
			subst(&ins.B)
			kill(ins.Dst)

		case ins.Op == OpSetIndex:
			subst(&ins.A)
			subst(&ins.B)
			subst(&ins.C)

		case ins.Op == OpRange:
			subst(&ins.A)
			subst(&ins.B)
			kill(ins.Dst)

		case ins.Op == OpArray:
			// Element registers form a contiguous block; no per-operand
			// substitution.
			kill(ins.Dst)

		case ins.Op == OpCall || ins.Op == OpCallBuiltin:
			// Callees cannot touch this frame's registers: arguments pass
			// by value and Tetra has no globals, so knowledge survives the
			// call. Only the result register changes.
			if ins.Dst >= 0 {
				kill(ins.Dst)
			}

		case ins.Op == OpReturn:
			subst(&ins.A)

		case ins.Op == OpForIter:
			kill(ins.Dst)
			kill(ins.A)
			kill(ins.A + 1)

		case ins.Op == OpParFor:
			subst(&ins.B)

		case ins.Op == OpArithConst || ins.Op == OpArithConstL:
			// Only present if fusion already ran (re-optimization).
			kill(ins.Dst)
		}
	}
	if changed {
		compact(ch)
	}
	return changed
}

// deadStoreOK are the opcodes dead-store removal may delete: writes with
// no side effects and no possible runtime error.
func deadStoreOK(op Op) bool {
	switch op {
	case OpConst, OpMove, OpToReal, OpNot, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// removeDeadStores deletes error-free writes to temporaries no path reads
// before the next write.
func removeDeadStores(f *Func, ch *Chunk) bool {
	code := ch.Code
	changed := false
	for pc := range code {
		ins := code[pc]
		if !deadStoreOK(ins.Op) || int(ins.Dst) < f.NumSlots {
			continue
		}
		if regLive(ch, pc+1, ins.Dst) {
			continue
		}
		code[pc] = Instr{Op: OpNop}
		changed = true
	}
	if changed {
		compact(ch)
	}
	return changed
}

// regLive reports whether some path from pc reads register reg before
// writing it.
func regLive(ch *Chunk, pc int, reg int32) bool {
	code := ch.Code
	seen := make([]bool, len(code))
	stack := []int{pc}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if p < 0 || p >= len(code) || seen[p] {
			continue
		}
		seen[p] = true
		ins := code[p]
		if readsReg(ins, reg) {
			return true
		}
		if writesReg(ins, reg) {
			continue
		}
		for _, s := range successors(ins, p) {
			stack = append(stack, s)
		}
	}
	return false
}

// readsReg reports whether ins reads register reg.
func readsReg(ins Instr, reg int32) bool {
	switch ins.Op {
	case OpMove, OpToReal, OpNeg, OpNot, OpReturn, OpArithConst, OpArithConstL, OpCmpConstJump:
		return ins.A == reg
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe,
		OpIndex, OpRange, OpCmpJump:
		return ins.A == reg || ins.B == reg
	case OpJumpIfFalse, OpJumpIfTrue, OpParFor:
		return ins.B == reg
	case OpSetIndex:
		return ins.A == reg || ins.B == reg || ins.C == reg
	case OpCall, OpCallBuiltin:
		return reg >= ins.B && reg < ins.B+ins.C
	case OpArray:
		return reg >= ins.A && reg < ins.A+ins.B
	case OpForIter:
		return ins.A == reg || ins.A+1 == reg
	}
	return false
}

// writesReg reports whether ins definitely overwrites register reg.
func writesReg(ins Instr, reg int32) bool {
	switch ins.Op {
	case OpConst, OpMove, OpToReal, OpNeg, OpNot,
		OpAdd, OpSub, OpMul, OpDiv, OpMod, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe,
		OpIndex, OpArray, OpRange, OpArithConst, OpArithConstL:
		return ins.Dst == reg
	case OpCall, OpCallBuiltin:
		return ins.Dst == reg && ins.Dst >= 0
	case OpForIter:
		return ins.Dst == reg || ins.A == reg || ins.A+1 == reg
	}
	return false
}

// successors returns the pcs control can reach from ins at pc.
func successors(ins Instr, pc int) []int {
	switch ins.Op {
	case OpJump:
		return []int{int(ins.A)}
	case OpReturn, OpReturnNone:
		return nil
	case OpJumpIfFalse, OpJumpIfTrue:
		return []int{int(ins.A), pc + 1}
	case OpCmpJump, OpCmpConstJump:
		return []int{int(ins.Dst), pc + 1}
	case OpForIter:
		return []int{int(ins.B), pc + 1}
	}
	return []int{pc + 1}
}

// threadJumps retargets jumps whose destination is an unconditional jump,
// following chains with a visit bound so degenerate cycles terminate.
func threadJumps(ch *Chunk) bool {
	code := ch.Code
	final := func(t int32) int32 {
		for hops := 0; hops <= len(code); hops++ {
			if int(t) >= len(code) || code[t].Op != OpJump || code[t].A == t {
				return t
			}
			t = code[t].A
		}
		return t
	}
	changed := false
	for i, ins := range code {
		switch ins.Op {
		case OpJump, OpJumpIfFalse, OpJumpIfTrue:
			if nt := final(ins.A); nt != ins.A {
				code[i].A = nt
				changed = true
			}
		case OpCmpJump, OpCmpConstJump:
			if nt := final(ins.Dst); nt != ins.Dst {
				code[i].Dst = nt
				changed = true
			}
		case OpForIter:
			if nt := final(ins.B); nt != ins.B {
				code[i].B = nt
				changed = true
			}
		}
	}
	return changed
}

// removeDeadCode deletes instructions unreachable from the chunk entry.
func removeDeadCode(ch *Chunk) bool {
	code := ch.Code
	if len(code) == 0 {
		return false
	}
	reach := make([]bool, len(code))
	stack := []int{0}
	reach[0] = true
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range successors(code[pc], pc) {
			if s >= 0 && s < len(code) && !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	changed := false
	for pc := range code {
		if !reach[pc] && code[pc].Op != OpNop {
			code[pc] = Instr{Op: OpNop}
			changed = true
		}
	}
	if changed {
		compact(ch)
	}
	return changed
}

// tempDeadPast reports whether temporary reg is dead on every path
// leaving the instruction at pc (the second element of a fusion window).
func tempDeadPast(ch *Chunk, pc int, reg int32) bool {
	for _, s := range successors(ch.Code[pc], pc) {
		if regLive(ch, s, reg) {
			return false
		}
	}
	return true
}

// fuseCmpJump merges a comparison with the conditional branch consuming
// its result. The branch must not be a jump target (the pair would be
// entered mid-window), the comparison's destination must be a temporary,
// and that temporary must be dead past the branch.
func fuseCmpJump(f *Func, ch *Chunk) {
	targets := jumpTargets(ch)
	code := ch.Code
	changed := false
	for pc := 0; pc+1 < len(code); pc++ {
		ins, next := code[pc], code[pc+1]
		if !isCompare(ins.Op) || targets[pc+1] || int(ins.Dst) < f.NumSlots {
			continue
		}
		if (next.Op != OpJumpIfFalse && next.Op != OpJumpIfTrue) || next.B != ins.Dst {
			continue
		}
		if !tempDeadPast(ch, pc+1, ins.Dst) {
			continue
		}
		sense := next.Op == OpJumpIfTrue
		code[pc] = Instr{Op: OpCmpJump, Dst: next.A, A: ins.A, B: ins.B, C: PackCmp(ins.Op, sense)}
		code[pc+1] = Instr{Op: OpNop}
		changed = true
	}
	if changed {
		compact(ch)
	}
}

// fuseCmpConst folds a constant operand into an OpCmpJump produced by
// fuseCmpJump.
func fuseCmpConst(f *Func, ch *Chunk) {
	targets := jumpTargets(ch)
	code := ch.Code
	changed := false
	for pc := 0; pc+1 < len(code); pc++ {
		ins, next := code[pc], code[pc+1]
		if ins.Op != OpConst || next.Op != OpCmpJump || targets[pc+1] || int(ins.Dst) < f.NumSlots {
			continue
		}
		constLeft := next.A == ins.Dst
		constRight := next.B == ins.Dst
		if constLeft == constRight { // neither, or both (degenerate k<k)
			continue
		}
		if !tempDeadPast(ch, pc+1, ins.Dst) {
			continue
		}
		cmp, sense := UnpackCmp(next.C)
		reg := next.A
		if constLeft {
			reg = next.B
		}
		code[pc] = Instr{Op: OpCmpConstJump, Dst: next.Dst, A: reg, B: ins.A, C: PackCmpConst(cmp, constLeft, sense)}
		ch.Pos[pc] = ch.Pos[pc+1]
		code[pc+1] = Instr{Op: OpNop}
		changed = true
	}
	if changed {
		compact(ch)
	}
}

// fuseArithConst folds a constant operand into the arithmetic instruction
// consuming it: Dst = A op K (OpArithConst) or Dst = K op A
// (OpArithConstL). The fused instruction keeps the arithmetic op's source
// position so a runtime error (division by zero) reports the operator,
// exactly as at O0. With a variable slot as both source and destination
// this is the load-arith-store superinstruction of the hot loop shapes
// (`i = i + 1`, `s = s % 1000003`).
func fuseArithConst(f *Func, ch *Chunk) {
	targets := jumpTargets(ch)
	code := ch.Code
	changed := false
	for pc := 0; pc+1 < len(code); pc++ {
		ins, next := code[pc], code[pc+1]
		if ins.Op != OpConst || !isArith(next.Op) || targets[pc+1] || int(ins.Dst) < f.NumSlots {
			continue
		}
		constLeft := next.A == ins.Dst
		constRight := next.B == ins.Dst
		if constLeft == constRight {
			continue
		}
		if !tempDeadPast(ch, pc+1, ins.Dst) {
			continue
		}
		if constRight {
			code[pc] = Instr{Op: OpArithConst, Dst: next.Dst, A: next.A, B: ins.A, C: int32(next.Op)}
		} else {
			code[pc] = Instr{Op: OpArithConstL, Dst: next.Dst, A: next.B, B: ins.A, C: int32(next.Op)}
		}
		ch.Pos[pc] = ch.Pos[pc+1]
		code[pc+1] = Instr{Op: OpNop}
		changed = true
	}
	if changed {
		compact(ch)
	}
}

// compact removes OpNop placeholders and remaps every jump target across
// the deletion. A target equal to len(code) (a jump to the chunk end) maps
// to the new end.
func compact(ch *Chunk) {
	code := ch.Code
	remap := make([]int32, len(code)+1)
	n := int32(0)
	for i, ins := range code {
		remap[i] = n
		if ins.Op != OpNop {
			n++
		}
	}
	remap[len(code)] = n

	newCode := make([]Instr, 0, n)
	newPos := ch.Pos[:0:0]
	for i, ins := range code {
		if ins.Op == OpNop {
			continue
		}
		switch ins.Op {
		case OpJump, OpJumpIfFalse, OpJumpIfTrue:
			ins.A = remap[ins.A]
		case OpCmpJump, OpCmpConstJump:
			ins.Dst = remap[ins.Dst]
		case OpForIter:
			ins.B = remap[ins.B]
		}
		newCode = append(newCode, ins)
		newPos = append(newPos, ch.Pos[i])
	}
	ch.Code = newCode
	ch.Pos = newPos
}
