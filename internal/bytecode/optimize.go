package bytecode

// The optimizer pipeline. Compiled chunks pass through four phases, each
// preserving observable program behaviour exactly (output bytes, runtime
// errors and their positions, parallel semantics):
//
//  1. constant folding    — Const/Const/op triples, unary ops on
//                           constants, and branches on constant conditions
//                           collapse at compile time. Folds evaluate by
//                           calling internal/sem — the same kernels the VM
//                           dispatches to at run time, so compile-time and
//                           run-time results are identical by construction
//                           — and are refused whenever the runtime would
//                           raise (division or modulo by zero, on ints AND
//                           reals), so the error surfaces at run time with
//                           its position.
//  2. jump threading      — a jump whose target is another unconditional
//                           jump is retargeted to the final destination,
//                           so conditional exits of nested loops do not
//                           hop through jump chains.
//  3. dead-code removal   — instructions unreachable from the chunk entry
//                           (e.g. the jump emitted after a `return` inside
//                           a conditional) are deleted, with all jump
//                           targets remapped.
//  4. peephole fusion     — compare+branch pairs fuse into OpCmpJump and
//                           const+arith pairs into OpArithConst, halving
//                           dispatch on the hottest loop shapes
//                           (`while i < n`, `i += 1`).
//
// Every phase is differentially verified: the golden corpus and the
// cross-backend differential tests must produce byte-identical output at
// O0 and O2 (see internal/vm's optimizer differential tests and the CI
// step running the corpus at both levels).

import (
	"repro/internal/sem"
	"repro/internal/value"
)

// Optimization levels.
const (
	O0 = 0 // no optimization: execute exactly what the compiler emitted
	O1 = 1 // constant folding + jump threading + dead-code elimination
	O2 = 2 // O1 plus peephole fusion (OpCmpJump, OpArithConst)

	// DefaultLevel is what the fast path uses unless told otherwise.
	DefaultLevel = O2
)

// Optimize runs the optimizer pipeline over every chunk of every function
// at the given level, mutating and returning p. Level <= 0 is a no-op;
// levels above O2 clamp to O2.
func Optimize(p *Program, level int) *Program {
	if level <= O0 {
		return p
	}
	for _, f := range p.Funcs {
		for ci := range f.Chunks {
			optimizeChunk(f, &f.Chunks[ci], level)
		}
	}
	return p
}

func optimizeChunk(f *Func, ch *Chunk, level int) {
	// Folding can expose more folds (e.g. 1+2+3) and threading can expose
	// more dead code, so iterate O1 to a fixpoint. Each round strictly
	// shrinks the chunk or changes nothing, so termination is immediate.
	for {
		changed := foldConstants(f, ch)
		changed = threadJumps(ch) || changed
		changed = removeDeadCode(ch) || changed
		if !changed {
			break
		}
	}
	if level >= O2 {
		fusePeepholes(f, ch)
	}
}

// jumpTargets returns, for each pc, whether some instruction jumps there.
// A folding or fusion window may only span pcs that are not entered from
// elsewhere (except at the window's first instruction).
func jumpTargets(ch *Chunk) []bool {
	t := make([]bool, len(ch.Code)+1)
	mark := func(a int32) {
		if a >= 0 && int(a) <= len(ch.Code) {
			t[a] = true
		}
	}
	for _, ins := range ch.Code {
		switch ins.Op {
		case OpJump, OpJumpIfFalse, OpJumpIfTrue, OpCmpJump:
			mark(ins.A)
		case OpForIter:
			mark(ins.B)
		}
	}
	return t
}

// constOf reports whether ins pushes a statically known value.
func constOf(f *Func, ins Instr) (value.Value, bool) {
	switch ins.Op {
	case OpConst:
		return f.Consts[ins.A], true
	case OpTrue:
		return value.NewBool(true), true
	case OpFalse:
		return value.NewBool(false), true
	}
	return value.Value{}, false
}

// constInstr builds the instruction that pushes v.
func constInstr(f *Func, v value.Value) Instr {
	if v.K == value.Bool {
		if v.Bool() {
			return Instr{Op: OpTrue}
		}
		return Instr{Op: OpFalse}
	}
	return Instr{Op: OpConst, A: f.constIndex(v)}
}

// semOps maps the foldable binary opcodes to their sem operators. The
// folder evaluates through internal/sem so compile-time folding and VM
// execution share one implementation.
var semOps = map[Op]sem.Op{
	OpAdd: sem.Add, OpSub: sem.Sub, OpMul: sem.Mul, OpDiv: sem.Div, OpMod: sem.Mod,
	OpEq: sem.Eq, OpNe: sem.Ne, OpLt: sem.Lt, OpLe: sem.Le, OpGt: sem.Gt, OpGe: sem.Ge,
}

// foldBinary evaluates l op r via the shared semantics core. ok is false
// when the expression must be left for run time: division or modulo by
// zero (int AND real — both raise), non-constant kinds, or oversized
// string concatenation (sem.MaxFoldedString).
func foldBinary(op Op, l, r value.Value) (v value.Value, ok bool) {
	return sem.FoldBinary(semOps[op], l, r)
}

func isArith(op Op) bool {
	return op == OpAdd || op == OpSub || op == OpMul || op == OpDiv || op == OpMod
}

func isCompare(op Op) bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// foldConstants rewrites constant computations in place, marking consumed
// instructions OpNop, then compacts the chunk. Reports whether anything
// changed.
func foldConstants(f *Func, ch *Chunk) bool {
	targets := jumpTargets(ch)
	code := ch.Code
	changed := false
	for pc := 0; pc < len(code); pc++ {
		ins := code[pc]
		v1, ok1 := constOf(f, ins)
		if !ok1 {
			continue
		}

		// Window: Const a, Const b, binop → Const (a op b).
		if pc+2 < len(code) && !targets[pc+1] && !targets[pc+2] {
			if v2, ok2 := constOf(f, code[pc+1]); ok2 {
				next := code[pc+2]
				if isArith(next.Op) || isCompare(next.Op) {
					if v, ok := foldBinary(next.Op, v1, v2); ok {
						code[pc] = constInstr(f, v)
						code[pc+1] = Instr{Op: OpNop}
						code[pc+2] = Instr{Op: OpNop}
						changed = true
						continue
					}
				}
			}
		}

		if pc+1 >= len(code) || targets[pc+1] {
			continue
		}
		next := code[pc+1]
		switch next.Op {
		// Const, unary op → folded constant (evaluated by sem, like the VM).
		case OpNeg:
			v, ok := sem.FoldNeg(v1)
			if !ok {
				continue
			}
			code[pc] = constInstr(f, v)
			code[pc+1] = Instr{Op: OpNop}
			changed = true
		case OpNot:
			v, ok := sem.FoldNot(v1)
			if !ok {
				continue
			}
			code[pc] = constInstr(f, v)
			code[pc+1] = Instr{Op: OpNop}
			changed = true
		case OpToReal:
			if v1.K == value.Int {
				code[pc] = constInstr(f, sem.ToReal(v1))
				code[pc+1] = Instr{Op: OpNop}
				changed = true
			} else if v1.K == value.Real {
				code[pc+1] = Instr{Op: OpNop}
				changed = true
			}

		// Constant condition, conditional branch → unconditional jump or
		// fall-through. This is what turns `while true:` into a plain loop.
		case OpJumpIfFalse, OpJumpIfTrue:
			if v1.K != value.Bool {
				continue
			}
			taken := v1.Bool() == (next.Op == OpJumpIfTrue)
			if taken {
				code[pc] = Instr{Op: OpJump, A: next.A}
			} else {
				code[pc] = Instr{Op: OpNop}
			}
			code[pc+1] = Instr{Op: OpNop}
			changed = true
		}
	}
	if changed {
		compact(ch)
	}
	return changed
}

// threadJumps retargets jumps whose destination is an unconditional jump,
// following chains with a visit bound so degenerate cycles terminate.
func threadJumps(ch *Chunk) bool {
	code := ch.Code
	final := func(t int32) int32 {
		for hops := 0; hops <= len(code); hops++ {
			if int(t) >= len(code) || code[t].Op != OpJump || code[t].A == t {
				return t
			}
			t = code[t].A
		}
		return t
	}
	changed := false
	for i, ins := range code {
		switch ins.Op {
		case OpJump, OpJumpIfFalse, OpJumpIfTrue, OpCmpJump:
			if nt := final(ins.A); nt != ins.A {
				code[i].A = nt
				changed = true
			}
		case OpForIter:
			if nt := final(ins.B); nt != ins.B {
				code[i].B = nt
				changed = true
			}
		}
	}
	return changed
}

// removeDeadCode deletes instructions unreachable from the chunk entry.
func removeDeadCode(ch *Chunk) bool {
	code := ch.Code
	if len(code) == 0 {
		return false
	}
	reach := make([]bool, len(code))
	stack := []int{0}
	visit := func(pc int32) {
		if pc >= 0 && int(pc) < len(code) && !reach[pc] {
			reach[pc] = true
			stack = append(stack, int(pc))
		}
	}
	reach[0] = true
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ins := code[pc]
		switch ins.Op {
		case OpJump:
			visit(ins.A)
		case OpReturn, OpReturnNone:
			// no successors
		case OpJumpIfFalse, OpJumpIfTrue, OpCmpJump:
			visit(ins.A)
			visit(int32(pc + 1))
		case OpForIter:
			visit(ins.B)
			visit(int32(pc + 1))
		default:
			visit(int32(pc + 1))
		}
	}
	changed := false
	for pc := range code {
		if !reach[pc] && code[pc].Op != OpNop {
			code[pc] = Instr{Op: OpNop}
			changed = true
		}
	}
	if changed {
		compact(ch)
	}
	return changed
}

// fusePeepholes merges adjacent pairs into the fused opcodes. The second
// instruction of a pair must not be a jump target (the pair would then be
// entered mid-window); the first may be — the fused op performs the same
// work the plain op did at that pc.
func fusePeepholes(f *Func, ch *Chunk) {
	targets := jumpTargets(ch)
	code := ch.Code
	changed := false
	for pc := 0; pc+1 < len(code); pc++ {
		ins, next := code[pc], code[pc+1]
		if targets[pc+1] {
			continue
		}
		switch {
		// compare + conditional branch → OpCmpJump.
		case isCompare(ins.Op) && (next.Op == OpJumpIfFalse || next.Op == OpJumpIfTrue):
			sense := int32(0)
			if next.Op == OpJumpIfTrue {
				sense = 1
			}
			code[pc] = Instr{Op: OpCmpJump, A: next.A, B: int32(ins.Op), C: sense}
			code[pc+1] = Instr{Op: OpNop}
			changed = true
		// const load + arithmetic → OpArithConst. The fused instruction
		// keeps the arithmetic op's source position so a runtime error
		// (division by zero) reports the operator, as at O0.
		case ins.Op == OpConst && isArith(next.Op):
			code[pc] = Instr{Op: OpArithConst, A: ins.A, B: int32(next.Op)}
			ch.Pos[pc] = ch.Pos[pc+1]
			code[pc+1] = Instr{Op: OpNop}
			changed = true
		}
	}
	if changed {
		compact(ch)
	}
}

// compact removes OpNop placeholders and remaps every jump target across
// the deletion. A target equal to len(code) (a jump to the chunk end) maps
// to the new end.
func compact(ch *Chunk) {
	code := ch.Code
	remap := make([]int32, len(code)+1)
	n := int32(0)
	for i, ins := range code {
		remap[i] = n
		if ins.Op != OpNop {
			n++
		}
	}
	remap[len(code)] = n

	newCode := make([]Instr, 0, n)
	newPos := ch.Pos[:0:0]
	for i, ins := range code {
		if ins.Op == OpNop {
			continue
		}
		switch ins.Op {
		case OpJump, OpJumpIfFalse, OpJumpIfTrue, OpCmpJump:
			ins.A = remap[ins.A]
		case OpForIter:
			ins.B = remap[ins.B]
		}
		newCode = append(newCode, ins)
		newPos = append(newPos, ch.Pos[i])
	}
	ch.Code = newCode
	ch.Pos = newPos
}
