// Package bytecode defines Tetra's register-based bytecode instruction
// set and the compiler from checked ASTs to bytecode.
//
// The paper lists a native-code compiler as future work (§VI): "compile
// Tetra code into an efficient executable ... one could write a Tetra
// program, run it through the IDE and step through it in the debugger when
// it is being developed, then compile it to a native executable to run it
// more efficiently." This package plays that role inside the reproduction:
// a compact register machine that removes both the AST-walk dispatch
// overhead and the stack-shuffle overhead of a classic stack VM, while
// keeping the identical parallel runtime semantics (threads, shared cells,
// named locks). The interpreter remains the debuggable path; the VM
// (internal/vm) is the fast path; the two are differentially tested
// against each other.
//
// # Register model
//
// Every instruction is three-address: Ins{Op, Dst, A, B} (plus C for the
// opcodes that need a fourth operand) over one flat register index space:
//
//   - registers [0, NumSlots) are the function's variable slots, assigned
//     by the checker — parameters first, then declared locals. These are
//     the slots the debugger names, the slots `parallel` threads share,
//     and the slot `parallel for` forks per iteration.
//   - registers [NumSlots, NumSlots+Chunk.NumTemps) are expression
//     temporaries, private to one activation of one chunk. Temporaries
//     are never shared between threads: each execution of a chunk gets a
//     fresh temp file, so a `for` loop's iteration state inside a
//     `parallel for` body can never race across iterations.
//
// The compiler evaluates expressions directly into registers: an
// assignment `x = y + z` is one OpAdd with Dst=x, and `i = i + 1` becomes
// a single arithmetic instruction reading and writing slot i — the
// load/arith/store shuffle of the former stack IR does not exist in this
// IR. The optimizer (optimize.go) further fuses constant operands and
// compare-branch pairs into superinstructions at -O2.
//
// Parallel constructs compile to sub-chunks: a parallel block with n child
// statements becomes n consecutive chunks, launched by one OpParallel
// instruction. Loops, conditionals and lock bodies compile inline with
// explicit jumps; the compiler emits the lock releases needed when break,
// continue or return exits a lock block early.
package bytecode

import "fmt"

// IRVersion identifies the bytecode format. It is folded into compile
// cache keys (internal/core) so that bytecode compiled under an older IR
// can never be replayed by a newer VM in a long-running process: an entry
// written under a different version simply misses. Bump it whenever the
// instruction encoding or register model changes incompatibly.
//
// Version history: 1 = the original stack IR; 2 = the register IR
// (3-address instructions, per-chunk temporaries, call-site IDs).
const IRVersion = 2

// Op is a bytecode opcode.
type Op uint8

// The instruction set. Operand meaning per opcode; registers are frame
// slots (< NumSlots) or chunk temporaries (>= NumSlots).
const (
	OpNop Op = iota

	OpConst // Dst = Consts[A]
	OpMove  // Dst = reg A
	OpToReal // Dst = int reg A widened to real

	// Arithmetic: Dst = A op B. Evaluated by internal/sem; division and
	// modulo raise positioned runtime errors.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	// Comparison: Dst = bool(A op B).
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpNeg // Dst = -A
	OpNot // Dst = not A

	OpJump        // pc = A
	OpJumpIfFalse // if !reg B: pc = A
	OpJumpIfTrue  // if reg B: pc = A

	// Calls. Arguments live in C consecutive registers starting at B. Dst
	// receives the result, or is -1 when the value is discarded (statement
	// position) or the callee is void. S is the call site's inline-cache
	// id (unique per program; see Program.NumSites).
	OpCall        // call Funcs[A]
	OpCallBuiltin // call builtin A
	OpReturn      // return reg A
	OpReturnNone  // leave the function with no value

	OpIndex    // Dst = reg A [ reg B ]   (array/string indexing)
	OpSetIndex // reg A [ reg B ] = reg C
	OpArray    // Dst = array of the B registers starting at A, elem type Types[C]
	OpRange    // Dst = [regA .. regB]

	// OpForIter drives for-in loops. Temp A holds the sequence and temp
	// A+1 the iteration index (both private to this activation); Dst is
	// the induction variable slot. When the index passes the end, jump to
	// B. String sequences are materialized into their runes on first
	// touch, in place, so iteration is rune-correct without per-step
	// decoding.
	OpForIter

	// Parallelism.
	OpParallel   // spawn chunks [A, A+B) each on its own thread; join all
	OpBackground // spawn chunks [A, A+B); do not join
	// OpParFor runs chunk A once per element of sequence reg B, each on
	// its own thread with a private cell for induction slot C; joins all.
	OpParFor

	OpLockAcquire // acquire program lock A
	OpLockRelease // release program lock A

	// Superinstructions, produced only by the optimizer (optimize.go) at
	// -O2. The compiler never emits them directly. Each preserves the
	// source position of the operation that can raise, so runtime errors
	// report exactly what -O0 reports.

	// OpArithConst fuses a constant right operand into arithmetic:
	// Dst = reg A <op C> Consts[B]. With Dst == A and A a variable slot
	// this is the fused load-arith-store of the hot loop shapes
	// (`i = i + 1`, `s = s % 1000003`).
	OpArithConst
	// OpArithConstL is the mirrored form for non-commutative operators:
	// Dst = Consts[B] <op C> reg A.
	OpArithConstL
	// OpCmpJump fuses a comparison with the conditional branch consuming
	// it: evaluate reg A <cmp> reg B where C packs (cmpOp<<1 | sense),
	// and jump to Dst when the result matches sense (1 = jump if true,
	// 0 = jump if false).
	OpCmpJump
	// OpCmpConstJump additionally fuses a constant operand:
	// C packs (cmpOp<<2 | side<<1 | sense); side 0 compares
	// reg A <cmp> Consts[B], side 1 compares Consts[B] <cmp> reg A.
	OpCmpConstJump
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpMove: "move", OpToReal: "toreal",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpNeg: "neg", OpNot: "not",
	OpJump: "jump", OpJumpIfFalse: "jfalse", OpJumpIfTrue: "jtrue",
	OpCall: "call", OpCallBuiltin: "callb", OpReturn: "ret", OpReturnNone: "retnone",
	OpIndex: "index", OpSetIndex: "setidx", OpArray: "array", OpRange: "range",
	OpForIter:  "foriter",
	OpParallel: "parallel", OpBackground: "background", OpParFor: "parfor",
	OpLockAcquire: "lockacq", OpLockRelease: "lockrel",
	OpArithConst: "arithk", OpArithConstL: "arithkl",
	OpCmpJump: "cmpjump", OpCmpConstJump: "cmpkjump",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Superinstruction C-field packing helpers.

// PackCmp packs a comparison opcode and jump sense for OpCmpJump.
func PackCmp(cmp Op, sense bool) int32 {
	c := int32(cmp) << 1
	if sense {
		c |= 1
	}
	return c
}

// UnpackCmp reverses PackCmp.
func UnpackCmp(c int32) (cmp Op, sense bool) {
	return Op(c >> 1), c&1 != 0
}

// PackCmpConst packs a comparison opcode, which side the constant is on
// (false = constant is the right operand), and the jump sense for
// OpCmpConstJump.
func PackCmpConst(cmp Op, constLeft, sense bool) int32 {
	c := int32(cmp) << 2
	if constLeft {
		c |= 2
	}
	if sense {
		c |= 1
	}
	return c
}

// UnpackCmpConst reverses PackCmpConst.
func UnpackCmpConst(c int32) (cmp Op, constLeft, sense bool) {
	return Op(c >> 2), c&2 != 0, c&1 != 0
}
