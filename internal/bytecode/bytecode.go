// Package bytecode defines Tetra's bytecode instruction set and the
// compiler from checked ASTs to bytecode.
//
// The paper lists a native-code compiler as future work (§VI): "compile
// Tetra code into an efficient executable ... one could write a Tetra
// program, run it through the IDE and step through it in the debugger when
// it is being developed, then compile it to a native executable to run it
// more efficiently." This package plays that role inside the reproduction:
// a compact stack machine that removes the AST-walk dispatch overhead while
// keeping the identical parallel runtime semantics (threads, shared cells,
// named locks). The interpreter remains the debuggable path; the VM
// (internal/vm) is the fast path; the two are differentially tested against
// each other.
//
// Parallel constructs compile to sub-chunks: a parallel block with n child
// statements becomes n consecutive chunks, launched by one OpParallel
// instruction. Loops, conditionals and lock bodies compile inline with
// explicit jumps; the compiler emits the lock releases needed when break,
// continue or return exits a lock block early.
package bytecode

import "fmt"

// Op is a bytecode opcode.
type Op uint8

// The instruction set. A and B (and C where noted) are the operands of
// Instr.
const (
	OpNop Op = iota

	OpConst // push Consts[A]
	OpTrue  // push true
	OpFalse // push false

	OpLoad  // push frame slot A
	OpStore // pop into frame slot A

	OpPop    // drop top of stack
	OpToReal // convert int on top of stack to real

	// Arithmetic and comparison; operands are popped right-then-left.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
	OpNot
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	OpJump        // pc = A
	OpJumpIfFalse // pop; if false pc = A
	OpJumpIfTrue  // pop; if true pc = A

	OpCall        // call Funcs[A] with B args popped from the stack
	OpCallBuiltin // call builtin A with B args
	OpReturn      // pop return value and leave the function
	OpReturnNone  // leave the function with no value

	OpIndex      // pop index, pop array/string, push element
	OpStoreIndex // pop value, pop index, pop array; store
	OpArray      // pop A elements, push array with element type Types[B]
	OpRange      // pop hi, pop lo, push [lo .. hi]

	// OpForIter drives for-in loops. Slot A holds the sequence and slot A+1
	// the iteration index (both hidden compiler slots); C is the induction
	// variable slot. When the index passes the end, jump to B.
	OpForIter

	// Parallelism.
	OpParallel   // spawn chunks [A, A+B) each on its own thread; join all
	OpBackground // spawn chunks [A, A+B); do not join
	// OpParFor pops the sequence and runs chunk A once per element on its
	// own thread, with a private cell for induction slot C; joins all.
	OpParFor

	OpLockAcquire // acquire program lock A
	OpLockRelease // release program lock A

	// Fused opcodes, produced only by the optimizer (internal/bytecode's
	// optimize.go) at -O2. The compiler never emits them directly.

	// OpCmpJump fuses a comparison with the conditional branch consuming
	// it: pop r, pop l, evaluate compare-op B (one of OpEq..OpGe), and jump
	// to A when the result matches sense C (1 = jump if true, 0 = jump if
	// false).
	OpCmpJump
	// OpArithConst fuses a constant load with the arithmetic op consuming
	// it: pop l, push l <op B> Consts[A], where B is one of OpAdd..OpMod.
	OpArithConst
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpTrue: "true", OpFalse: "false",
	OpLoad: "load", OpStore: "store", OpPop: "pop", OpToReal: "toreal",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpNeg: "neg", OpNot: "not",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpJump: "jump", OpJumpIfFalse: "jfalse", OpJumpIfTrue: "jtrue",
	OpCall: "call", OpCallBuiltin: "callb", OpReturn: "ret", OpReturnNone: "retnone",
	OpIndex: "index", OpStoreIndex: "storeidx", OpArray: "array", OpRange: "range",
	OpForIter:  "foriter",
	OpParallel: "parallel", OpBackground: "background", OpParFor: "parfor",
	OpLockAcquire: "lockacq", OpLockRelease: "lockrel",
	OpCmpJump: "cmpjump", OpArithConst: "arithconst",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}
