package bytecode

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/token"
	"repro/internal/types"
	"repro/internal/value"
)

// Instr is one three-address instruction. Dst is the destination register
// (or a jump target's auxiliary operand for the fused compare-branches);
// the meaning of A, B and C depends on the opcode — see the Op constants.
// S is the inline-cache site id on call opcodes and unused elsewhere.
type Instr struct {
	Op            Op
	Dst, A, B, C  int32
	S             int32
}

// Chunk is a straight-line-with-jumps code sequence. Pos parallels Code,
// giving each instruction's source position for runtime errors. NumTemps
// is how many temporary registers one activation of the chunk needs,
// beyond the function's NumSlots variable registers.
type Chunk struct {
	Code     []Instr
	Pos      []token.Pos
	NumTemps int
}

// Func is one compiled function.
type Func struct {
	Name      string
	NumParams int
	NumSlots  int // variable registers: parameters then locals, checker-assigned
	Shared    bool
	Result    *types.Type
	Consts    []value.Value
	Types     []*types.Type // element-type table for OpArray
	SlotNames []string      // variable names per slot, for the disassembler
	Chunks    []Chunk       // Chunks[0] is the body; the rest are parallel sub-chunks
}

// Program is a fully compiled Tetra program.
type Program struct {
	Funcs     []*Func
	LockNames []string
	MainIndex int // -1 when the source has no main
	// NumSites is the number of call sites in the program; OpCall and
	// OpCallBuiltin instructions carry a unique S in [0, NumSites) that
	// the VM uses to index its inline-cache table.
	NumSites int
}

// Compile lowers a checked AST program to register bytecode.
func Compile(p *ast.Program) (*Program, error) {
	out := &Program{LockNames: p.LockNames, MainIndex: -1}
	// Parameter types of every function, indexed by function index, used to
	// widen int arguments into real parameters at call sites.
	params := make([][]*types.Type, len(p.Funcs))
	for i, f := range p.Funcs {
		pts := make([]*types.Type, len(f.Params))
		for j, prm := range f.Params {
			pts[j] = prm.Type
		}
		params[i] = pts
	}
	var sites int32
	for i, f := range p.Funcs {
		cf, err := compileFunc(f, params, &sites)
		if err != nil {
			return nil, err
		}
		out.Funcs = append(out.Funcs, cf)
		if f.Name == "main" {
			out.MainIndex = i
		}
	}
	out.NumSites = int(sites)
	return out, nil
}

type fnCompiler struct {
	fn     *Func
	src    *ast.FuncDecl
	params [][]*types.Type // parameter types of every program function
	sites  *int32          // program-wide call-site counter
	// cur is the chunk being emitted into.
	cur int
	// nextTemp is the next free temporary register; temporaries live in
	// [fn.NumSlots, maxTemp) and are allocated with stack discipline —
	// each statement and each genExprTo call releases its temporaries on
	// exit, so the watermark tracks expression depth, not program size.
	nextTemp int
	maxTemp  int
	// lockStack tracks enclosing lock blocks within the current chunk so
	// early exits (return) can release them.
	lockStack []int32
	// loopLocks records how many locks were held when the innermost loop
	// was entered, so break/continue release only locks acquired inside it.
	loopLockBase []int
	// breaks/continues collect jump placeholders per loop nesting level.
	breaks    [][]int
	continues [][]int
}

func compileFunc(f *ast.FuncDecl, params [][]*types.Type, sites *int32) (*Func, error) {
	c := &fnCompiler{
		params: params,
		sites:  sites,
		fn: &Func{
			Name:      f.Name,
			NumParams: len(f.Params),
			NumSlots:  f.NumSlots,
			Shared:    f.HasParallel,
			Result:    f.Result,
			SlotNames: f.SlotNames,
			Chunks:    make([]Chunk, 1),
		},
		src:      f,
		nextTemp: f.NumSlots,
		maxTemp:  f.NumSlots,
	}
	if err := c.block(f.Body); err != nil {
		return nil, err
	}
	c.emit(OpReturnNone, 0, 0, 0, 0, f.Pos())
	c.fn.Chunks[0].NumTemps = c.maxTemp - c.fn.NumSlots
	return c.fn, nil
}

func (c *fnCompiler) chunk() *Chunk { return &c.fn.Chunks[c.cur] }

func (c *fnCompiler) emit(op Op, dst, a, b, cc int32, pos token.Pos) int {
	ch := c.chunk()
	ch.Code = append(ch.Code, Instr{Op: op, Dst: dst, A: a, B: b, C: cc})
	ch.Pos = append(ch.Pos, pos)
	return len(ch.Code) - 1
}

// emitCall emits a call instruction carrying a fresh inline-cache site id.
func (c *fnCompiler) emitCall(op Op, dst, fnIdx, argBase, nargs int32, pos token.Pos) int {
	site := *c.sites
	*c.sites++
	ch := c.chunk()
	ch.Code = append(ch.Code, Instr{Op: op, Dst: dst, A: fnIdx, B: argBase, C: nargs, S: site})
	ch.Pos = append(ch.Pos, pos)
	return len(ch.Code) - 1
}

// patch sets the A operand (jump target) of the placeholder at index i to
// the current pc.
func (c *fnCompiler) patch(i int) {
	c.chunk().Code[i].A = int32(len(c.chunk().Code))
}

func (c *fnCompiler) pc() int32 { return int32(len(c.chunk().Code)) }

// temp allocates one temporary register.
func (c *fnCompiler) temp() int32 {
	t := c.nextTemp
	c.nextTemp++
	if c.nextTemp > c.maxTemp {
		c.maxTemp = c.nextTemp
	}
	return int32(t)
}

// tempN allocates n consecutive temporary registers (call-argument and
// array-element blocks).
func (c *fnCompiler) tempN(n int) int32 {
	t := c.nextTemp
	c.nextTemp += n
	if c.nextTemp > c.maxTemp {
		c.maxTemp = c.nextTemp
	}
	return int32(t)
}

// isTemp reports whether reg is a compiler temporary the current
// expression owns (as opposed to a variable slot another thread or a
// subexpression might read).
func (c *fnCompiler) isTemp(reg int32) bool { return int(reg) >= c.fn.NumSlots }

func (c *fnCompiler) constIndex(v value.Value) int32 { return c.fn.constIndex(v) }

// constIndex interns v in the function's constant pool, reusing an
// existing slot when an identical constant is already pooled. Shared by
// the compiler and the optimizer's constant folder.
func (f *Func) constIndex(v value.Value) int32 {
	for i, existing := range f.Consts {
		if existing.K == v.K && existing.B == v.B && existing.S == v.S && existing.A == v.A {
			return int32(i)
		}
	}
	f.Consts = append(f.Consts, v)
	return int32(len(f.Consts) - 1)
}

func (c *fnCompiler) typeIndex(t *types.Type) int32 {
	for i, existing := range c.fn.Types {
		if types.Equal(existing, t) {
			return int32(i)
		}
	}
	c.fn.Types = append(c.fn.Types, t)
	return int32(len(c.fn.Types) - 1)
}

func (c *fnCompiler) block(b *ast.Block) error {
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

// stmt compiles one statement; all temporaries it allocates are released
// when it completes. Loop-carried state (for-in sequence and index) stays
// live exactly as long as the loop statement is being compiled.
func (c *fnCompiler) stmt(s ast.Stmt) error {
	base := c.nextTemp
	err := c.stmtInner(s)
	c.nextTemp = base
	return err
}

func (c *fnCompiler) stmtInner(s ast.Stmt) error {
	switch s := s.(type) {
	case *ast.ExprStmt:
		// Statement-position calls discard their value: Dst = -1.
		call := s.X.(*ast.CallExpr)
		return c.genCall(call, -1)

	case *ast.AssignStmt:
		return c.assign(s)

	case *ast.IfStmt:
		condBase := c.nextTemp
		cond, err := c.genExpr(s.Cond)
		if err != nil {
			return err
		}
		jElse := c.emit(OpJumpIfFalse, 0, 0, cond, 0, s.Pos())
		c.nextTemp = condBase // cond temp dead past the branch
		if err := c.block(s.Then); err != nil {
			return err
		}
		if s.Else == nil {
			c.patch(jElse)
			return nil
		}
		jEnd := c.emit(OpJump, 0, 0, 0, 0, s.Pos())
		c.patch(jElse)
		if err := c.block(s.Else); err != nil {
			return err
		}
		c.patch(jEnd)
		return nil

	case *ast.WhileStmt:
		top := c.pc()
		condBase := c.nextTemp
		cond, err := c.genExpr(s.Cond)
		if err != nil {
			return err
		}
		jExit := c.emit(OpJumpIfFalse, 0, 0, cond, 0, s.Pos())
		c.nextTemp = condBase
		c.pushLoop()
		if err := c.block(s.Body); err != nil {
			return err
		}
		c.emit(OpJump, 0, top, 0, 0, s.Pos())
		c.popLoop(top)
		c.patch(jExit)
		return nil

	case *ast.ForStmt:
		// Loop state lives in two consecutive temporaries private to this
		// activation: the sequence and the iteration index. In a chunk run
		// concurrently (a `for` inside `parallel for`), each thread
		// therefore iterates independently — the state can't race.
		state := c.tempN(2)
		if err := c.genExprTo(s.Seq, state); err != nil {
			return err
		}
		c.emit(OpConst, state+1, c.constIndex(value.NewInt(0)), 0, 0, s.Pos())
		top := c.pc()
		iter := c.emit(OpForIter, int32(s.Var.Slot), state, 0, 0, s.Pos())
		c.pushLoop()
		if err := c.block(s.Body); err != nil {
			return err
		}
		c.emit(OpJump, 0, top, 0, 0, s.Pos())
		c.popLoop(top)
		c.chunk().Code[iter].B = c.pc()
		return nil

	case *ast.ReturnStmt:
		// Release any locks held in this chunk before leaving. The release
		// precedes evaluation of the return value, matching the
		// interpreter's unwind order.
		for i := len(c.lockStack) - 1; i >= 0; i-- {
			c.emit(OpLockRelease, 0, c.lockStack[i], 0, 0, s.Pos())
		}
		if s.Value == nil {
			c.emit(OpReturnNone, 0, 0, 0, 0, s.Pos())
			return nil
		}
		r, err := c.genExpr(s.Value)
		if err != nil {
			return err
		}
		r = c.widenReg(s.Value, c.fn.Result, r, s.Pos())
		c.emit(OpReturn, 0, r, 0, 0, s.Pos())
		return nil

	case *ast.BreakStmt:
		c.releaseLoopLocks(s.Pos())
		j := c.emit(OpJump, 0, 0, 0, 0, s.Pos())
		n := len(c.breaks) - 1
		c.breaks[n] = append(c.breaks[n], j)
		return nil

	case *ast.ContinueStmt:
		c.releaseLoopLocks(s.Pos())
		j := c.emit(OpJump, 0, 0, 0, 0, s.Pos())
		n := len(c.continues) - 1
		c.continues[n] = append(c.continues[n], j)
		return nil

	case *ast.PassStmt:
		return nil

	case *ast.LockStmt:
		c.emit(OpLockAcquire, 0, int32(s.LockIndex), 0, 0, s.Pos())
		c.lockStack = append(c.lockStack, int32(s.LockIndex))
		if err := c.block(s.Body); err != nil {
			return err
		}
		c.lockStack = c.lockStack[:len(c.lockStack)-1]
		c.emit(OpLockRelease, 0, int32(s.LockIndex), 0, 0, s.Pos())
		return nil

	case *ast.ParallelStmt:
		first := len(c.fn.Chunks)
		for _, child := range s.Body.Stmts {
			if err := c.subChunk(func() error { return c.stmt(child) }); err != nil {
				return err
			}
		}
		c.emit(OpParallel, 0, int32(first), int32(len(s.Body.Stmts)), 0, s.Pos())
		return nil

	case *ast.BackgroundStmt:
		first := len(c.fn.Chunks)
		for _, child := range s.Body.Stmts {
			if err := c.subChunk(func() error { return c.stmt(child) }); err != nil {
				return err
			}
		}
		c.emit(OpBackground, 0, int32(first), int32(len(s.Body.Stmts)), 0, s.Pos())
		return nil

	case *ast.ParallelForStmt:
		seq, err := c.genExpr(s.Seq)
		if err != nil {
			return err
		}
		idx := len(c.fn.Chunks)
		if err := c.subChunk(func() error { return c.block(s.Body) }); err != nil {
			return err
		}
		c.emit(OpParFor, 0, int32(idx), seq, int32(s.Var.Slot), s.Pos())
		return nil
	}
	return fmt.Errorf("bytecode: unsupported statement %T", s)
}

// subChunk compiles body into a fresh chunk and restores the emission
// context. Parallel bodies contain no break/continue/return that could
// escape (the checker rejects them), so loop and lock state start empty;
// the new chunk gets its own temporary file.
func (c *fnCompiler) subChunk(body func() error) error {
	saveCur := c.cur
	saveNext, saveMax := c.nextTemp, c.maxTemp
	saveLocks := c.lockStack
	saveLoopBase := c.loopLockBase
	saveBreaks, saveConts := c.breaks, c.continues

	c.fn.Chunks = append(c.fn.Chunks, Chunk{})
	c.cur = len(c.fn.Chunks) - 1
	c.nextTemp, c.maxTemp = c.fn.NumSlots, c.fn.NumSlots
	c.lockStack = nil
	c.loopLockBase = nil
	c.breaks, c.continues = nil, nil

	err := body()
	c.emit(OpReturnNone, 0, 0, 0, 0, c.src.Pos())
	c.chunk().NumTemps = c.maxTemp - c.fn.NumSlots

	c.cur = saveCur
	c.nextTemp, c.maxTemp = saveNext, saveMax
	c.lockStack = saveLocks
	c.loopLockBase = saveLoopBase
	c.breaks, c.continues = saveBreaks, saveConts
	return err
}

func (c *fnCompiler) pushLoop() {
	c.breaks = append(c.breaks, nil)
	c.continues = append(c.continues, nil)
	c.loopLockBase = append(c.loopLockBase, len(c.lockStack))
}

// popLoop patches break jumps to fall here (after the loop's back-jump) and
// continue jumps to the loop head.
func (c *fnCompiler) popLoop(continueTarget int32) {
	n := len(c.breaks) - 1
	for _, j := range c.breaks[n] {
		c.patch(j)
	}
	for _, j := range c.continues[n] {
		c.chunk().Code[j].A = continueTarget
	}
	c.breaks = c.breaks[:n]
	c.continues = c.continues[:n]
	c.loopLockBase = c.loopLockBase[:len(c.loopLockBase)-1]
}

// releaseLoopLocks emits releases for locks acquired inside the innermost
// loop, for break/continue paths.
func (c *fnCompiler) releaseLoopLocks(pos token.Pos) {
	if len(c.loopLockBase) == 0 {
		return
	}
	base := c.loopLockBase[len(c.loopLockBase)-1]
	for i := len(c.lockStack) - 1; i >= base; i-- {
		c.emit(OpLockRelease, 0, c.lockStack[i], 0, 0, pos)
	}
}

func (c *fnCompiler) assign(s *ast.AssignStmt) error {
	switch target := s.Target.(type) {
	case *ast.Ident:
		slot := int32(target.Slot)
		if s.Op == token.ASSIGN {
			if needWiden(s.Value, target.Type()) {
				// Widen via a temporary so the variable is never observed
				// holding the unwidened int (the slot may be a shared cell).
				r, err := c.genExpr(s.Value)
				if err != nil {
					return err
				}
				r = c.widenReg(s.Value, target.Type(), r, s.OpPos)
				c.emit(OpMove, slot, r, 0, 0, s.Pos())
				return nil
			}
			return c.genExprTo(s.Value, slot)
		}
		// Augmented assignment: one arithmetic instruction reading and
		// writing the slot — the register IR's fused load-arith-store.
		r, err := c.genExpr(s.Value)
		if err != nil {
			return err
		}
		c.emit(augToOp(s.Op), slot, slot, r, 0, s.OpPos)
		if target.Type().Kind() == types.Real {
			c.emit(OpToReal, slot, slot, 0, 0, s.OpPos)
		}
		return nil

	case *ast.IndexExpr:
		if s.Op != token.ASSIGN {
			// Augmented index assignment evaluates the array and index
			// exactly once, into temporaries, shared by the read and the
			// write-back.
			arr, err := c.genExprTemp(target.X)
			if err != nil {
				return err
			}
			idx, err := c.genExprTemp(target.Index)
			if err != nil {
				return err
			}
			cur := c.temp()
			c.emit(OpIndex, cur, arr, idx, 0, s.Pos())
			r, err := c.genExpr(s.Value)
			if err != nil {
				return err
			}
			c.emit(augToOp(s.Op), cur, cur, r, 0, s.OpPos)
			if target.Type().Kind() == types.Real {
				c.emit(OpToReal, cur, cur, 0, 0, s.OpPos)
			}
			c.emit(OpSetIndex, 0, arr, idx, cur, s.Pos())
			return nil
		}
		arr, err := c.genExpr(target.X)
		if err != nil {
			return err
		}
		idx, err := c.genExpr(target.Index)
		if err != nil {
			return err
		}
		r, err := c.genExpr(s.Value)
		if err != nil {
			return err
		}
		r = c.widenReg(s.Value, target.Type(), r, s.OpPos)
		c.emit(OpSetIndex, 0, arr, idx, r, s.Pos())
		return nil
	}
	return fmt.Errorf("bytecode: bad assignment target %T", s.Target)
}

func augToOp(k token.Kind) Op {
	switch k {
	case token.PLUSASSIGN:
		return OpAdd
	case token.MINUSASSIGN:
		return OpSub
	case token.STARASSIGN:
		return OpMul
	case token.SLASHASSIGN:
		return OpDiv
	default:
		return OpMod
	}
}

// needWiden reports whether a statically-int expression flows into a real
// context.
func needWiden(e ast.Expr, dst *types.Type) bool {
	return dst.Kind() == types.Real && e.Type().Kind() == types.Int
}

// widenReg emits OpToReal when e (held in reg) flows into a real context,
// returning the register holding the widened value. Owned temporaries
// widen in place; variable slots widen into a fresh temporary so the
// variable itself is never written.
func (c *fnCompiler) widenReg(e ast.Expr, dst *types.Type, reg int32, pos token.Pos) int32 {
	if !needWiden(e, dst) {
		return reg
	}
	if c.isTemp(reg) {
		c.emit(OpToReal, reg, reg, 0, 0, pos)
		return reg
	}
	t := c.temp()
	c.emit(OpToReal, t, reg, 0, 0, pos)
	return t
}

// genExpr evaluates e and returns the register holding its value. An
// identifier aliases its variable slot with no instruction emitted; any
// other expression lands in a fresh temporary. Callers that need an
// owned, writable register must use genExprTemp.
func (c *fnCompiler) genExpr(e ast.Expr) (int32, error) {
	if id, ok := e.(*ast.Ident); ok {
		return int32(id.Slot), nil
	}
	t := c.temp()
	if err := c.genExprTo(e, t); err != nil {
		return 0, err
	}
	return t, nil
}

// genExprTemp is genExpr but always copies into an owned temporary, for
// consumers that must capture a variable's value exactly once.
func (c *fnCompiler) genExprTemp(e ast.Expr) (int32, error) {
	t := c.temp()
	if err := c.genExprTo(e, t); err != nil {
		return 0, err
	}
	return t, nil
}

// genExprTo evaluates e into register dst. Subexpression temporaries are
// released on return — only dst survives.
func (c *fnCompiler) genExprTo(e ast.Expr, dst int32) error {
	base := c.nextTemp
	err := c.genExprToInner(e, dst)
	c.nextTemp = base
	return err
}

func (c *fnCompiler) genExprToInner(e ast.Expr, dst int32) error {
	switch e := e.(type) {
	case *ast.IntLit:
		c.emit(OpConst, dst, c.constIndex(value.NewInt(e.Value)), 0, 0, e.Pos())
	case *ast.RealLit:
		c.emit(OpConst, dst, c.constIndex(value.NewReal(e.Value)), 0, 0, e.Pos())
	case *ast.StringLit:
		c.emit(OpConst, dst, c.constIndex(value.NewString(e.Value)), 0, 0, e.Pos())
	case *ast.BoolLit:
		c.emit(OpConst, dst, c.constIndex(value.NewBool(e.Value)), 0, 0, e.Pos())
	case *ast.Ident:
		c.emit(OpMove, dst, int32(e.Slot), 0, 0, e.Pos())

	case *ast.ArrayLit:
		elem := e.Type().Elem()
		base := c.tempN(len(e.Elems))
		for i, el := range e.Elems {
			r := base + int32(i)
			if err := c.genExprTo(el, r); err != nil {
				return err
			}
			if needWiden(el, elem) {
				c.emit(OpToReal, r, r, 0, 0, el.Pos())
			}
		}
		c.emit(OpArray, dst, base, int32(len(e.Elems)), c.typeIndex(elem), e.Pos())

	case *ast.RangeLit:
		lo, err := c.genExpr(e.Lo)
		if err != nil {
			return err
		}
		hi, err := c.genExpr(e.Hi)
		if err != nil {
			return err
		}
		c.emit(OpRange, dst, lo, hi, 0, e.Pos())

	case *ast.UnaryExpr:
		r, err := c.genExpr(e.X)
		if err != nil {
			return err
		}
		if e.Op == token.NOT {
			c.emit(OpNot, dst, r, 0, 0, e.Pos())
		} else {
			c.emit(OpNeg, dst, r, 0, 0, e.Pos())
		}

	case *ast.BinaryExpr:
		return c.binary(e, dst)

	case *ast.IndexExpr:
		x, err := c.genExpr(e.X)
		if err != nil {
			return err
		}
		idx, err := c.genExpr(e.Index)
		if err != nil {
			return err
		}
		c.emit(OpIndex, dst, x, idx, 0, e.Pos())

	case *ast.CallExpr:
		return c.genCall(e, dst)

	default:
		return fmt.Errorf("bytecode: unsupported expression %T", e)
	}
	return nil
}

// genCall compiles a call whose result lands in dst (-1 discards it).
// Arguments are evaluated left to right into a block of consecutive
// temporaries, widened in place where an int argument meets a real
// parameter.
func (c *fnCompiler) genCall(e *ast.CallExpr, dst int32) error {
	base := c.nextTemp
	argBase := c.tempN(len(e.Args))
	for i, a := range e.Args {
		r := argBase + int32(i)
		if err := c.genExprTo(a, r); err != nil {
			return err
		}
		if !e.IsBuiltin && needWiden(a, c.params[e.FuncIndex][i]) {
			c.emit(OpToReal, r, r, 0, 0, a.Pos())
		}
	}
	if e.IsBuiltin {
		c.emitCall(OpCallBuiltin, dst, int32(e.Builtin), argBase, int32(len(e.Args)), e.Pos())
	} else {
		c.emitCall(OpCall, dst, int32(e.FuncIndex), argBase, int32(len(e.Args)), e.Pos())
	}
	c.nextTemp = base
	return nil
}

// binary compiles a binary expression into dst. Short-circuit and/or
// become conditional jumps over the right operand, with the result
// accumulating directly in dst; everything else is one three-address
// instruction.
func (c *fnCompiler) binary(e *ast.BinaryExpr, dst int32) error {
	if e.Op == token.AND || e.Op == token.OR {
		// The left operand's value IS the result when the jump is taken,
		// and the right operand's value otherwise — so evaluate both into
		// the same register. dst must be an owned temporary: writing a
		// variable slot before the right operand runs could be observed
		// (shared frames) or read back (the right operand may mention the
		// variable). Route through a temporary when it isn't.
		if !c.isTemp(dst) {
			t := c.temp()
			if err := c.binary(e, t); err != nil {
				return err
			}
			c.emit(OpMove, dst, t, 0, 0, e.Pos())
			return nil
		}
		if err := c.genExprTo(e.X, dst); err != nil {
			return err
		}
		var j int
		if e.Op == token.AND {
			j = c.emit(OpJumpIfFalse, 0, 0, dst, 0, e.Pos())
		} else {
			j = c.emit(OpJumpIfTrue, 0, 0, dst, 0, e.Pos())
		}
		if err := c.genExprTo(e.Y, dst); err != nil {
			return err
		}
		c.patch(j)
		return nil
	}

	x, err := c.genExpr(e.X)
	if err != nil {
		return err
	}
	y, err := c.genExpr(e.Y)
	if err != nil {
		return err
	}
	var op Op
	switch e.Op {
	case token.PLUS:
		op = OpAdd
	case token.MINUS:
		op = OpSub
	case token.STAR:
		op = OpMul
	case token.SLASH:
		op = OpDiv
	case token.PERCENT:
		op = OpMod
	case token.EQ:
		op = OpEq
	case token.NE:
		op = OpNe
	case token.LT:
		op = OpLt
	case token.LE:
		op = OpLe
	case token.GT:
		op = OpGt
	case token.GE:
		op = OpGe
	default:
		return fmt.Errorf("bytecode: unsupported operator %s", e.Op)
	}
	// Record the operator's position, not the expression start, so a
	// runtime error (division by zero) points where the interpreter points.
	c.emit(op, dst, x, y, 0, e.OpPos)
	return nil
}
