package bytecode

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/token"
	"repro/internal/types"
	"repro/internal/value"
)

// Instr is one instruction. The meaning of A, B and C depends on the
// opcode; see the Op constants.
type Instr struct {
	Op      Op
	A, B, C int32
}

// Chunk is a straight-line-with-jumps code sequence. Pos parallels Code,
// giving each instruction's source position for runtime errors.
type Chunk struct {
	Code []Instr
	Pos  []token.Pos
}

// Func is one compiled function.
type Func struct {
	Name      string
	NumParams int
	NumSlots  int // includes parameters and compiler-hidden loop slots
	Shared    bool
	Result    *types.Type
	Consts    []value.Value
	Types     []*types.Type // element-type table for OpArray
	Chunks    []Chunk       // Chunks[0] is the body; the rest are parallel sub-chunks
}

// Program is a fully compiled Tetra program.
type Program struct {
	Funcs     []*Func
	LockNames []string
	MainIndex int // -1 when the source has no main
}

// Compile lowers a checked AST program to bytecode.
func Compile(p *ast.Program) (*Program, error) {
	out := &Program{LockNames: p.LockNames, MainIndex: -1}
	// Parameter types of every function, indexed by function index, used to
	// widen int arguments into real parameters at call sites.
	params := make([][]*types.Type, len(p.Funcs))
	for i, f := range p.Funcs {
		pts := make([]*types.Type, len(f.Params))
		for j, prm := range f.Params {
			pts[j] = prm.Type
		}
		params[i] = pts
	}
	for i, f := range p.Funcs {
		cf, err := compileFunc(f, params)
		if err != nil {
			return nil, err
		}
		out.Funcs = append(out.Funcs, cf)
		if f.Name == "main" {
			out.MainIndex = i
		}
	}
	return out, nil
}

type fnCompiler struct {
	fn     *Func
	src    *ast.FuncDecl
	params [][]*types.Type // parameter types of every program function
	// cur is the chunk being emitted into.
	cur int
	// nextHidden allocates hidden slots (loop sequence + index pairs).
	nextHidden int
	// lockDepth tracks enclosing lock blocks within the current chunk so
	// early exits (return) can release them.
	lockStack []int32
	// loopLocks records how many locks were held when the innermost loop
	// was entered, so break/continue release only locks acquired inside it.
	loopLockBase []int
	// breaks/continues collect jump placeholders per loop nesting level.
	breaks    [][]int
	continues [][]int
}

func compileFunc(f *ast.FuncDecl, params [][]*types.Type) (*Func, error) {
	c := &fnCompiler{
		params: params,
		fn: &Func{
			Name:      f.Name,
			NumParams: len(f.Params),
			Shared:    f.HasParallel,
			Result:    f.Result,
			Chunks:    make([]Chunk, 1),
		},
		src:        f,
		nextHidden: f.NumSlots,
	}
	if err := c.block(f.Body); err != nil {
		return nil, err
	}
	c.emit(OpReturnNone, 0, 0, 0, f.Pos())
	c.fn.NumSlots = c.nextHidden
	return c.fn, nil
}

func (c *fnCompiler) chunk() *Chunk { return &c.fn.Chunks[c.cur] }

func (c *fnCompiler) emit(op Op, a, b, cc int32, pos token.Pos) int {
	ch := c.chunk()
	ch.Code = append(ch.Code, Instr{Op: op, A: a, B: b, C: cc})
	ch.Pos = append(ch.Pos, pos)
	return len(ch.Code) - 1
}

// patch sets the A operand (jump target) of the placeholder at index i to
// the current pc.
func (c *fnCompiler) patch(i int) {
	c.chunk().Code[i].A = int32(len(c.chunk().Code))
}

func (c *fnCompiler) pc() int32 { return int32(len(c.chunk().Code)) }

func (c *fnCompiler) constIndex(v value.Value) int32 { return c.fn.constIndex(v) }

// constIndex interns v in the function's constant pool, reusing an
// existing slot when an identical constant is already pooled. Shared by
// the compiler and the optimizer's constant folder.
func (f *Func) constIndex(v value.Value) int32 {
	for i, existing := range f.Consts {
		if existing.K == v.K && existing.B == v.B && existing.S == v.S && existing.A == v.A {
			return int32(i)
		}
	}
	f.Consts = append(f.Consts, v)
	return int32(len(f.Consts) - 1)
}

func (c *fnCompiler) typeIndex(t *types.Type) int32 {
	for i, existing := range c.fn.Types {
		if types.Equal(existing, t) {
			return int32(i)
		}
	}
	c.fn.Types = append(c.fn.Types, t)
	return int32(len(c.fn.Types) - 1)
}

func (c *fnCompiler) block(b *ast.Block) error {
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *fnCompiler) stmt(s ast.Stmt) error {
	switch s := s.(type) {
	case *ast.ExprStmt:
		call := s.X.(*ast.CallExpr)
		if err := c.expr(call); err != nil {
			return err
		}
		if call.Type() != nil {
			c.emit(OpPop, 0, 0, 0, s.Pos())
		}
		return nil

	case *ast.AssignStmt:
		return c.assign(s)

	case *ast.IfStmt:
		if err := c.expr(s.Cond); err != nil {
			return err
		}
		jElse := c.emit(OpJumpIfFalse, 0, 0, 0, s.Pos())
		if err := c.block(s.Then); err != nil {
			return err
		}
		if s.Else == nil {
			c.patch(jElse)
			return nil
		}
		jEnd := c.emit(OpJump, 0, 0, 0, s.Pos())
		c.patch(jElse)
		if err := c.block(s.Else); err != nil {
			return err
		}
		c.patch(jEnd)
		return nil

	case *ast.WhileStmt:
		top := c.pc()
		if err := c.expr(s.Cond); err != nil {
			return err
		}
		jExit := c.emit(OpJumpIfFalse, 0, 0, 0, s.Pos())
		c.pushLoop()
		if err := c.block(s.Body); err != nil {
			return err
		}
		c.emit(OpJump, top, 0, 0, s.Pos())
		c.popLoop(top)
		c.patch(jExit)
		return nil

	case *ast.ForStmt:
		if err := c.expr(s.Seq); err != nil {
			return err
		}
		seqSlot := c.hidden2()
		c.emit(OpConst, c.constIndex(value.NewInt(0)), 0, 0, s.Pos())
		c.emit(OpStore, int32(seqSlot+1), 0, 0, s.Pos())
		c.emit(OpStore, int32(seqSlot), 0, 0, s.Pos())
		top := c.pc()
		iter := c.emit(OpForIter, int32(seqSlot), 0, int32(s.Var.Slot), s.Pos())
		c.pushLoop()
		if err := c.block(s.Body); err != nil {
			return err
		}
		c.emit(OpJump, top, 0, 0, s.Pos())
		c.popLoop(top)
		c.chunk().Code[iter].B = c.pc()
		// break jumps land after the loop; exit target for iter is here too.
		return nil

	case *ast.ReturnStmt:
		// Release any locks held in this chunk before leaving.
		for i := len(c.lockStack) - 1; i >= 0; i-- {
			c.emit(OpLockRelease, c.lockStack[i], 0, 0, s.Pos())
		}
		if s.Value == nil {
			c.emit(OpReturnNone, 0, 0, 0, s.Pos())
			return nil
		}
		if err := c.expr(s.Value); err != nil {
			return err
		}
		c.widen(s.Value, c.fn.Result, s.Pos())
		c.emit(OpReturn, 0, 0, 0, s.Pos())
		return nil

	case *ast.BreakStmt:
		c.releaseLoopLocks(s.Pos())
		j := c.emit(OpJump, 0, 0, 0, s.Pos())
		n := len(c.breaks) - 1
		c.breaks[n] = append(c.breaks[n], j)
		return nil

	case *ast.ContinueStmt:
		c.releaseLoopLocks(s.Pos())
		j := c.emit(OpJump, 0, 0, 0, s.Pos())
		n := len(c.continues) - 1
		c.continues[n] = append(c.continues[n], j)
		return nil

	case *ast.PassStmt:
		return nil

	case *ast.LockStmt:
		c.emit(OpLockAcquire, int32(s.LockIndex), 0, 0, s.Pos())
		c.lockStack = append(c.lockStack, int32(s.LockIndex))
		if err := c.block(s.Body); err != nil {
			return err
		}
		c.lockStack = c.lockStack[:len(c.lockStack)-1]
		c.emit(OpLockRelease, int32(s.LockIndex), 0, 0, s.Pos())
		return nil

	case *ast.ParallelStmt:
		first := len(c.fn.Chunks)
		for _, child := range s.Body.Stmts {
			if err := c.subChunk(func() error { return c.stmt(child) }); err != nil {
				return err
			}
		}
		c.emit(OpParallel, int32(first), int32(len(s.Body.Stmts)), 0, s.Pos())
		return nil

	case *ast.BackgroundStmt:
		first := len(c.fn.Chunks)
		for _, child := range s.Body.Stmts {
			if err := c.subChunk(func() error { return c.stmt(child) }); err != nil {
				return err
			}
		}
		c.emit(OpBackground, int32(first), int32(len(s.Body.Stmts)), 0, s.Pos())
		return nil

	case *ast.ParallelForStmt:
		if err := c.expr(s.Seq); err != nil {
			return err
		}
		idx := len(c.fn.Chunks)
		if err := c.subChunk(func() error { return c.block(s.Body) }); err != nil {
			return err
		}
		c.emit(OpParFor, int32(idx), 0, int32(s.Var.Slot), s.Pos())
		return nil
	}
	return fmt.Errorf("bytecode: unsupported statement %T", s)
}

// subChunk compiles body into a fresh chunk and restores the emission
// context. Parallel bodies contain no break/continue/return that could
// escape (the checker rejects them), so loop and lock state start empty.
func (c *fnCompiler) subChunk(body func() error) error {
	saveCur := c.cur
	saveLocks := c.lockStack
	saveLoopBase := c.loopLockBase
	saveBreaks, saveConts := c.breaks, c.continues

	c.fn.Chunks = append(c.fn.Chunks, Chunk{})
	c.cur = len(c.fn.Chunks) - 1
	c.lockStack = nil
	c.loopLockBase = nil
	c.breaks, c.continues = nil, nil

	err := body()
	c.emit(OpReturnNone, 0, 0, 0, c.src.Pos())

	c.cur = saveCur
	c.lockStack = saveLocks
	c.loopLockBase = saveLoopBase
	c.breaks, c.continues = saveBreaks, saveConts
	return err
}

// hidden2 allocates two consecutive hidden slots (sequence, index).
func (c *fnCompiler) hidden2() int {
	s := c.nextHidden
	c.nextHidden += 2
	return s
}

func (c *fnCompiler) pushLoop() {
	c.breaks = append(c.breaks, nil)
	c.continues = append(c.continues, nil)
	c.loopLockBase = append(c.loopLockBase, len(c.lockStack))
}

// popLoop patches break jumps to fall here (after the loop's back-jump) and
// continue jumps to the loop head.
func (c *fnCompiler) popLoop(continueTarget int32) {
	n := len(c.breaks) - 1
	for _, j := range c.breaks[n] {
		c.patch(j)
	}
	for _, j := range c.continues[n] {
		c.chunk().Code[j].A = continueTarget
	}
	c.breaks = c.breaks[:n]
	c.continues = c.continues[:n]
	c.loopLockBase = c.loopLockBase[:len(c.loopLockBase)-1]
}

// releaseLoopLocks emits releases for locks acquired inside the innermost
// loop, for break/continue paths.
func (c *fnCompiler) releaseLoopLocks(pos token.Pos) {
	if len(c.loopLockBase) == 0 {
		return
	}
	base := c.loopLockBase[len(c.loopLockBase)-1]
	for i := len(c.lockStack) - 1; i >= base; i-- {
		c.emit(OpLockRelease, c.lockStack[i], 0, 0, pos)
	}
}

func (c *fnCompiler) assign(s *ast.AssignStmt) error {
	switch target := s.Target.(type) {
	case *ast.Ident:
		if s.Op != token.ASSIGN {
			c.emit(OpLoad, int32(target.Slot), 0, 0, target.Pos())
		}
		if err := c.expr(s.Value); err != nil {
			return err
		}
		if s.Op != token.ASSIGN {
			c.emit(augToOp(s.Op), 0, 0, 0, s.OpPos)
		} else {
			c.widen(s.Value, target.Type(), s.OpPos)
		}
		if s.Op != token.ASSIGN && target.Type().Kind() == types.Real {
			c.emit(OpToReal, 0, 0, 0, s.OpPos)
		}
		c.emit(OpStore, int32(target.Slot), 0, 0, s.Pos())
		return nil

	case *ast.IndexExpr:
		if err := c.expr(target.X); err != nil {
			return err
		}
		if err := c.expr(target.Index); err != nil {
			return err
		}
		if s.Op != token.ASSIGN {
			// Recompute array and index for the read; the stack holds
			// (arr, idx) — duplicate via re-evaluation, which is safe
			// because the checker only allows simple expressions here and
			// side effects in index expressions are calls, re-run
			// identically. To avoid double side effects we evaluate into
			// hidden slots instead.
			arrSlot := c.hidden2()
			c.emit(OpStore, int32(arrSlot+1), 0, 0, s.Pos()) // idx
			c.emit(OpStore, int32(arrSlot), 0, 0, s.Pos())   // arr
			c.emit(OpLoad, int32(arrSlot), 0, 0, s.Pos())
			c.emit(OpLoad, int32(arrSlot+1), 0, 0, s.Pos())
			c.emit(OpLoad, int32(arrSlot), 0, 0, s.Pos())
			c.emit(OpLoad, int32(arrSlot+1), 0, 0, s.Pos())
			c.emit(OpIndex, 0, 0, 0, s.Pos())
			if err := c.expr(s.Value); err != nil {
				return err
			}
			c.emit(augToOp(s.Op), 0, 0, 0, s.OpPos)
			if target.Type().Kind() == types.Real {
				c.emit(OpToReal, 0, 0, 0, s.OpPos)
			}
			c.emit(OpStoreIndex, 0, 0, 0, s.Pos())
			return nil
		}
		if err := c.expr(s.Value); err != nil {
			return err
		}
		c.widen(s.Value, target.Type(), s.OpPos)
		c.emit(OpStoreIndex, 0, 0, 0, s.Pos())
		return nil
	}
	return fmt.Errorf("bytecode: bad assignment target %T", s.Target)
}

func augToOp(k token.Kind) Op {
	switch k {
	case token.PLUSASSIGN:
		return OpAdd
	case token.MINUSASSIGN:
		return OpSub
	case token.STARASSIGN:
		return OpMul
	case token.SLASHASSIGN:
		return OpDiv
	default:
		return OpMod
	}
}

// widen emits OpToReal when a statically-int expression flows into a real
// context.
func (c *fnCompiler) widen(e ast.Expr, dst *types.Type, pos token.Pos) {
	if dst.Kind() == types.Real && e.Type().Kind() == types.Int {
		c.emit(OpToReal, 0, 0, 0, pos)
	}
}

func (c *fnCompiler) expr(e ast.Expr) error {
	switch e := e.(type) {
	case *ast.IntLit:
		c.emit(OpConst, c.constIndex(value.NewInt(e.Value)), 0, 0, e.Pos())
	case *ast.RealLit:
		c.emit(OpConst, c.constIndex(value.NewReal(e.Value)), 0, 0, e.Pos())
	case *ast.StringLit:
		c.emit(OpConst, c.constIndex(value.NewString(e.Value)), 0, 0, e.Pos())
	case *ast.BoolLit:
		if e.Value {
			c.emit(OpTrue, 0, 0, 0, e.Pos())
		} else {
			c.emit(OpFalse, 0, 0, 0, e.Pos())
		}
	case *ast.Ident:
		c.emit(OpLoad, int32(e.Slot), 0, 0, e.Pos())

	case *ast.ArrayLit:
		elem := e.Type().Elem()
		for _, el := range e.Elems {
			if err := c.expr(el); err != nil {
				return err
			}
			c.widen(el, elem, el.Pos())
		}
		c.emit(OpArray, int32(len(e.Elems)), c.typeIndex(elem), 0, e.Pos())

	case *ast.RangeLit:
		if err := c.expr(e.Lo); err != nil {
			return err
		}
		if err := c.expr(e.Hi); err != nil {
			return err
		}
		c.emit(OpRange, 0, 0, 0, e.Pos())

	case *ast.UnaryExpr:
		if err := c.expr(e.X); err != nil {
			return err
		}
		if e.Op == token.NOT {
			c.emit(OpNot, 0, 0, 0, e.Pos())
		} else {
			c.emit(OpNeg, 0, 0, 0, e.Pos())
		}

	case *ast.BinaryExpr:
		return c.binary(e)

	case *ast.IndexExpr:
		if err := c.expr(e.X); err != nil {
			return err
		}
		if err := c.expr(e.Index); err != nil {
			return err
		}
		c.emit(OpIndex, 0, 0, 0, e.Pos())

	case *ast.CallExpr:
		for i, a := range e.Args {
			if err := c.expr(a); err != nil {
				return err
			}
			if !e.IsBuiltin {
				// Widen int args into real parameters.
				c.widen(a, c.params[e.FuncIndex][i], a.Pos())
			}
		}
		if e.IsBuiltin {
			c.emit(OpCallBuiltin, int32(e.Builtin), int32(len(e.Args)), 0, e.Pos())
		} else {
			c.emit(OpCall, int32(e.FuncIndex), int32(len(e.Args)), 0, e.Pos())
		}

	default:
		return fmt.Errorf("bytecode: unsupported expression %T", e)
	}
	return nil
}

func (c *fnCompiler) binary(e *ast.BinaryExpr) error {
	// Short-circuit and/or compile to conditional jumps.
	if e.Op == token.AND || e.Op == token.OR {
		if err := c.expr(e.X); err != nil {
			return err
		}
		var j int
		if e.Op == token.AND {
			j = c.emit(OpJumpIfFalse, 0, 0, 0, e.Pos())
		} else {
			j = c.emit(OpJumpIfTrue, 0, 0, 0, e.Pos())
		}
		if err := c.expr(e.Y); err != nil {
			return err
		}
		jEnd := c.emit(OpJump, 0, 0, 0, e.Pos())
		c.patch(j)
		if e.Op == token.AND {
			c.emit(OpFalse, 0, 0, 0, e.Pos())
		} else {
			c.emit(OpTrue, 0, 0, 0, e.Pos())
		}
		c.patch(jEnd)
		return nil
	}

	if err := c.expr(e.X); err != nil {
		return err
	}
	if err := c.expr(e.Y); err != nil {
		return err
	}
	var op Op
	switch e.Op {
	case token.PLUS:
		op = OpAdd
	case token.MINUS:
		op = OpSub
	case token.STAR:
		op = OpMul
	case token.SLASH:
		op = OpDiv
	case token.PERCENT:
		op = OpMod
	case token.EQ:
		op = OpEq
	case token.NE:
		op = OpNe
	case token.LT:
		op = OpLt
	case token.LE:
		op = OpLe
	case token.GT:
		op = OpGt
	case token.GE:
		op = OpGe
	default:
		return fmt.Errorf("bytecode: unsupported operator %s", e.Op)
	}
	// Record the operator's position, not the expression start, so a
	// runtime error (division by zero) points where the interpreter points.
	c.emit(op, 0, 0, 0, e.OpPos)
	return nil
}

// Disassemble renders a compiled function for debugging and tests.
// Constant operands and the optimizer's fused opcodes get a trailing
// comment spelling out their meaning.
func Disassemble(f *Func) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (params=%d slots=%d shared=%v)\n", f.Name, f.NumParams, f.NumSlots, f.Shared)
	for ci, ch := range f.Chunks {
		fmt.Fprintf(&sb, " chunk %d:\n", ci)
		for pc, ins := range ch.Code {
			fmt.Fprintf(&sb, "  %4d %-10s %d %d %d%s\n", pc, ins.Op, ins.A, ins.B, ins.C, annotate(f, ins))
		}
	}
	return sb.String()
}

// annotate explains operands that are opaque in the raw A B C rendering.
func annotate(f *Func, ins Instr) string {
	constStr := func(i int32) string {
		if int(i) < len(f.Consts) {
			c := f.Consts[i]
			if c.K == value.Str {
				return fmt.Sprintf("%q", c.Str())
			}
			return c.String()
		}
		return "?"
	}
	switch ins.Op {
	case OpConst:
		return "   ; push " + constStr(ins.A)
	case OpCmpJump:
		sense := "if-true"
		if ins.C == 0 {
			sense = "if-false"
		}
		return fmt.Sprintf("   ; %s → jump %d %s", Op(ins.B), ins.A, sense)
	case OpArithConst:
		return fmt.Sprintf("   ; %s const %s", Op(ins.B), constStr(ins.A))
	}
	return ""
}
