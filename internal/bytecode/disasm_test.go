package bytecode

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/parser"
)

var updateGolden = flag.Bool("update", false, "rewrite the disassembler golden file")

// TestDisassembleGolden pins the full disassembly of a program exercising
// every operand style — named slots, temporaries, superinstructions,
// inline-cache sites, sub-chunks, locks — so any format drift (which the
// fold differential harness and grading tools parse) shows up as a diff.
// Regenerate deliberately with: go test ./internal/bytecode -run Golden -update
func TestDisassembleGolden(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "disasm.ttr"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse("disasm.ttr", string(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := check.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	bc, err := Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	Optimize(bc, O2)
	got := DisassembleProgram(bc)

	goldenPath := filepath.Join("testdata", "disasm.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if got != string(want) {
		t.Errorf("disassembly drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Belt and braces on the properties the golden encodes, so a careless
	// -update cannot silently bless a regression.
	for _, want := range []string{
		"r0=total",   // variable slots carry source names
		"arithk",     // fused constant arithmetic survives in main's loop
		"; ic site ", // call instructions expose their inline-cache id
		"chunk 1",    // parallel bodies are sub-chunks
		"lock#0",     // lock ops reference the program lock table
		"locks: report",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("disassembly missing %q:\n%s", want, got)
		}
	}
}

// TestDisassembleStableUnderReruns guards the no-hidden-state property:
// disassembling the same program twice must be byte-identical (the
// renderer reads the Program, never mutates it).
func TestDisassembleStableUnderReruns(t *testing.T) {
	bc := compileSrc(t, "def main():\n    x = 1\n    print(x + 2)\n")
	Optimize(bc, O2)
	a := DisassembleProgram(bc)
	b := DisassembleProgram(bc)
	if a != b {
		t.Error("disassembly differs between runs over the same program")
	}
}
