package parser

import "testing"

// FuzzParse asserts that no panic escapes Parse on arbitrary input: the
// internal bailout panic idiom must be recovered at the package boundary
// and surface only as an error value.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"def main():\n    pass\n",
		"def main():\n    print(1 + )\n",
		"def f(x int) int:\n    return x\n",
		"def main():\n    parallel:\n        x = 1\n        y = 2\n",
		"def main():\n    while true:\n        background:\n            pass\n",
		"def main():\n    lock m:\n        a[0] += [1 .. 3][1]\n",
		"def main():\n\tif x:\n  y\n",
		"def main():\n    s = \"unterminated\n",
		"\x00\xff def",
		"def def def : : :",
		"def main():\n    x = 1_000_000_000_000_000_000_000\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Parse must return normally — either a program or an error —
		// for every input. A panic fails the fuzz run on its own.
		prog, err := Parse("fuzz.ttr", src)
		if err == nil && prog == nil {
			t.Error("Parse returned nil program and nil error")
		}
	})
}
