// Package parser implements the recursive-descent parser for Tetra.
//
// The original system used Bison; a hand-written parser is simpler to keep
// in lockstep with the hand-written indentation-aware lexer and yields
// better error messages, which matter in an educational language.
package parser

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/token"
	"repro/internal/types"
)

// Error is a syntax error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

// Parse scans and parses a Tetra source file into a Program.
func Parse(file, src string) (*ast.Program, error) {
	toks, err := lexer.Tokens(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	file string
	toks []token.Token
	pos  int
}

// bailout carries a *Error up the recursion; parse methods stay simple and
// the panic is converted back to an error at the top (the Effective Go
// "panic within a package" idiom).
type bailout struct{ err *Error }

func (p *parser) cur() token.Token  { return p.toks[p.pos] }
func (p *parser) peek() token.Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) (token.Token, bool) {
	if p.at(k) {
		return p.next(), true
	}
	return token.Token{}, false
}

func (p *parser) expect(k token.Kind, context string) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s %s, found %s", k, context, p.cur())
	panic("unreachable")
}

func (p *parser) errorf(format string, args ...any) {
	panic(bailout{&Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}})
}

func (p *parser) program() (prog *ast.Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			if b, ok := r.(bailout); ok {
				prog, err = nil, b.err
				return
			}
			panic(r)
		}
	}()
	prog = &ast.Program{File: p.file}
	for !p.at(token.EOF) {
		if !p.at(token.DEF) {
			p.errorf("expected function definition, found %s", p.cur())
		}
		prog.Funcs = append(prog.Funcs, p.funcDecl())
	}
	return prog, nil
}

// funcDecl parses: def name ( params ) [type] : block
func (p *parser) funcDecl() *ast.FuncDecl {
	p.expect(token.DEF, "to begin function")
	nameTok := p.expect(token.IDENT, "as function name")
	f := &ast.FuncDecl{NamePos: nameTok.Pos, Name: nameTok.Lit}
	p.expect(token.LPAREN, "after function name")
	if !p.at(token.RPAREN) {
		for {
			pn := p.expect(token.IDENT, "as parameter name")
			pt := p.typeExpr()
			f.Params = append(f.Params, &ast.Param{NamePos: pn.Pos, Name: pn.Lit, Type: pt})
			if _, ok := p.accept(token.COMMA); !ok {
				break
			}
		}
	}
	p.expect(token.RPAREN, "after parameters")
	if p.atType() {
		f.Result = p.typeExpr()
	}
	f.Body = p.block("function body")
	return f
}

func (p *parser) atType() bool {
	switch p.cur().Kind {
	case token.TINT, token.TREAL, token.TSTRING, token.TBOOL, token.LBRACKET:
		return true
	}
	return false
}

// typeExpr parses: int | real | string | bool | [ type ]
func (p *parser) typeExpr() *types.Type {
	switch t := p.next(); t.Kind {
	case token.TINT:
		return types.IntType
	case token.TREAL:
		return types.RealType
	case token.TSTRING:
		return types.StringType
	case token.TBOOL:
		return types.BoolType
	case token.LBRACKET:
		elem := p.typeExpr()
		p.expect(token.RBRACKET, "to close array type")
		return types.ArrayOf(elem)
	default:
		p.errorf("expected a type, found %s", t)
		panic("unreachable")
	}
}

// block parses: ':' NEWLINE INDENT stmt+ DEDENT
func (p *parser) block(context string) *ast.Block {
	colon := p.expect(token.COLON, "to begin "+context)
	b := &ast.Block{Colon: colon.Pos}
	p.expect(token.NEWLINE, "after ':'")
	p.expect(token.INDENT, "to begin "+context)
	for !p.at(token.DEDENT) && !p.at(token.EOF) {
		b.Stmts = append(b.Stmts, p.stmt())
	}
	p.expect(token.DEDENT, "to end "+context)
	return b
}

func (p *parser) stmt() ast.Stmt {
	switch p.cur().Kind {
	case token.IF:
		return p.ifStmt(token.IF)
	case token.WHILE:
		t := p.next()
		cond := p.expr()
		return &ast.WhileStmt{WhilePos: t.Pos, Cond: cond, Body: p.block("while body")}
	case token.FOR:
		return p.forStmt(p.next().Pos, false)
	case token.PARALLEL:
		t := p.next()
		if p.at(token.FOR) {
			p.next()
			return p.forStmt(t.Pos, true)
		}
		return &ast.ParallelStmt{ParPos: t.Pos, Body: p.block("parallel block")}
	case token.BACKGROUND:
		t := p.next()
		return &ast.BackgroundStmt{BgPos: t.Pos, Body: p.block("background block")}
	case token.LOCK:
		t := p.next()
		name := p.expect(token.IDENT, "as lock name")
		return &ast.LockStmt{LockPos: t.Pos, Name: name.Lit, Body: p.block("lock block")}
	case token.RETURN:
		t := p.next()
		var val ast.Expr
		if !p.at(token.NEWLINE) {
			val = p.expr()
		}
		p.expect(token.NEWLINE, "after return")
		return &ast.ReturnStmt{RetPos: t.Pos, Value: val}
	case token.BREAK:
		t := p.next()
		p.expect(token.NEWLINE, "after break")
		return &ast.BreakStmt{BrPos: t.Pos}
	case token.CONTINUE:
		t := p.next()
		p.expect(token.NEWLINE, "after continue")
		return &ast.ContinueStmt{ContPos: t.Pos}
	case token.PASS:
		t := p.next()
		p.expect(token.NEWLINE, "after pass")
		return &ast.PassStmt{PassPos: t.Pos}
	case token.DEF:
		p.errorf("nested function definitions are not supported")
	}
	return p.simpleStmt()
}

// ifStmt parses an if/elif/else chain; elifs desugar to nested IfStmts.
func (p *parser) ifStmt(kw token.Kind) ast.Stmt {
	t := p.expect(kw, "")
	cond := p.expr()
	s := &ast.IfStmt{IfPos: t.Pos, Cond: cond, Then: p.block("if body")}
	switch p.cur().Kind {
	case token.ELIF:
		nested := p.ifStmt(token.ELIF)
		s.Else = &ast.Block{Colon: nested.Pos(), Stmts: []ast.Stmt{nested}}
	case token.ELSE:
		p.next()
		s.Else = p.block("else body")
	}
	return s
}

func (p *parser) forStmt(pos token.Pos, parallel bool) ast.Stmt {
	v := p.expect(token.IDENT, "as loop variable")
	p.expect(token.IN, "after loop variable")
	seq := p.expr()
	body := p.block("for body")
	ident := &ast.Ident{NamePos: v.Pos, Name: v.Lit, Slot: -1}
	if parallel {
		return &ast.ParallelForStmt{ParPos: pos, Var: ident, Seq: seq, Body: body}
	}
	return &ast.ForStmt{ForPos: pos, Var: ident, Seq: seq, Body: body}
}

// simpleStmt parses an expression statement or an assignment, terminated by
// NEWLINE.
func (p *parser) simpleStmt() ast.Stmt {
	lhs := p.expr()
	switch p.cur().Kind {
	case token.ASSIGN, token.PLUSASSIGN, token.MINUSASSIGN, token.STARASSIGN,
		token.SLASHASSIGN, token.PERCENTASSIGN:
		op := p.next()
		switch lhs.(type) {
		case *ast.Ident, *ast.IndexExpr:
		default:
			panic(bailout{&Error{Pos: lhs.Pos(), Msg: "invalid assignment target"}})
		}
		rhs := p.expr()
		p.expect(token.NEWLINE, "after assignment")
		return &ast.AssignStmt{Target: lhs, OpPos: op.Pos, Op: op.Kind, Value: rhs}
	}
	p.expect(token.NEWLINE, "after expression")
	return &ast.ExprStmt{X: lhs}
}

// Expression grammar, loosest binding first:
//
//	expr   := and {"or" and}
//	and    := not {"and" not}
//	not    := "not" not | cmp
//	cmp    := arith [relop arith]
//	arith  := term {("+"|"-") term}
//	term   := unary {("*"|"/"|"%") unary}
//	unary  := "-" unary | postfix
//	postfix:= primary {"(" args ")" | "[" expr "]"}
func (p *parser) expr() ast.Expr { return p.orExpr() }

func (p *parser) orExpr() ast.Expr {
	x := p.andExpr()
	for p.at(token.OR) {
		op := p.next()
		y := p.andExpr()
		x = &ast.BinaryExpr{Op: token.OR, OpPos: op.Pos, X: x, Y: y}
	}
	return x
}

func (p *parser) andExpr() ast.Expr {
	x := p.notExpr()
	for p.at(token.AND) {
		op := p.next()
		y := p.notExpr()
		x = &ast.BinaryExpr{Op: token.AND, OpPos: op.Pos, X: x, Y: y}
	}
	return x
}

func (p *parser) notExpr() ast.Expr {
	if p.at(token.NOT) {
		op := p.next()
		x := p.notExpr()
		return &ast.UnaryExpr{OpPos: op.Pos, Op: token.NOT, X: x}
	}
	return p.comparison()
}

func (p *parser) comparison() ast.Expr {
	x := p.arith()
	switch p.cur().Kind {
	case token.EQ, token.NE, token.LT, token.LE, token.GT, token.GE:
		op := p.next()
		y := p.arith()
		switch p.cur().Kind {
		case token.EQ, token.NE, token.LT, token.LE, token.GT, token.GE:
			// Without this check the second relop falls through to an
			// unhelpful "expected X, found >" somewhere up the stack.
			p.errorf("Tetra does not support chained comparisons like a %s b %s c; use \"and\" to combine two comparisons", op.Kind, p.cur().Kind)
		}
		return &ast.BinaryExpr{Op: op.Kind, OpPos: op.Pos, X: x, Y: y}
	}
	return x
}

func (p *parser) arith() ast.Expr {
	x := p.term()
	for p.at(token.PLUS) || p.at(token.MINUS) {
		op := p.next()
		y := p.term()
		x = &ast.BinaryExpr{Op: op.Kind, OpPos: op.Pos, X: x, Y: y}
	}
	return x
}

func (p *parser) term() ast.Expr {
	x := p.unary()
	for p.at(token.STAR) || p.at(token.SLASH) || p.at(token.PERCENT) {
		op := p.next()
		y := p.unary()
		x = &ast.BinaryExpr{Op: op.Kind, OpPos: op.Pos, X: x, Y: y}
	}
	return x
}

func (p *parser) unary() ast.Expr {
	if p.at(token.MINUS) {
		op := p.next()
		x := p.unary()
		return &ast.UnaryExpr{OpPos: op.Pos, Op: token.MINUS, X: x}
	}
	return p.postfix()
}

func (p *parser) postfix() ast.Expr {
	x := p.primary()
	for {
		switch p.cur().Kind {
		case token.LPAREN:
			id, ok := x.(*ast.Ident)
			if !ok {
				p.errorf("only named functions can be called")
			}
			lp := p.next()
			call := &ast.CallExpr{Fun: id, Lparen: lp.Pos, FuncIndex: -1, Builtin: -1}
			if !p.at(token.RPAREN) {
				for {
					call.Args = append(call.Args, p.expr())
					if _, ok := p.accept(token.COMMA); !ok {
						break
					}
				}
			}
			p.expect(token.RPAREN, "to close call")
			x = call
		case token.LBRACKET:
			lb := p.next()
			idx := p.expr()
			if p.at(token.COLON) {
				p.errorf("Tetra does not support slice expressions; index one element at a time")
			}
			p.expect(token.RBRACKET, "to close index")
			x = &ast.IndexExpr{X: x, Lbrack: lb.Pos, Index: idx}
		default:
			return x
		}
	}
}

func (p *parser) primary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.INT:
		p.next()
		v, err := parseInt(t.Lit)
		if err != nil {
			p.errorf("invalid integer literal %q: %v", t.Lit, err)
		}
		return &ast.IntLit{LitPos: t.Pos, Value: v}
	case token.REAL:
		p.next()
		v, err := parseReal(t.Lit)
		if err != nil {
			p.errorf("invalid real literal %q: %v", t.Lit, err)
		}
		return &ast.RealLit{LitPos: t.Pos, Value: v, Text: t.Lit}
	case token.STRING:
		p.next()
		return &ast.StringLit{LitPos: t.Pos, Value: t.Lit}
	case token.TRUE:
		p.next()
		return &ast.BoolLit{LitPos: t.Pos, Value: true}
	case token.FALSE:
		p.next()
		return &ast.BoolLit{LitPos: t.Pos, Value: false}
	case token.IDENT:
		p.next()
		return &ast.Ident{NamePos: t.Pos, Name: t.Lit, Slot: -1}
	case token.LPAREN:
		p.next()
		x := p.expr()
		p.expect(token.RPAREN, "to close parenthesized expression")
		return x
	case token.LBRACKET:
		return p.arrayOrRange()
	}
	p.errorf("expected an expression, found %s", t)
	panic("unreachable")
}

// arrayOrRange parses [e1, e2, ...] or [lo .. hi].
func (p *parser) arrayOrRange() ast.Expr {
	lb := p.expect(token.LBRACKET, "")
	if p.at(token.RBRACKET) {
		p.next()
		return &ast.ArrayLit{Lbrack: lb.Pos}
	}
	first := p.expr()
	if p.at(token.DOTDOT) {
		p.next()
		hi := p.expr()
		p.expect(token.RBRACKET, "to close range literal")
		return &ast.RangeLit{Lbrack: lb.Pos, Lo: first, Hi: hi}
	}
	lit := &ast.ArrayLit{Lbrack: lb.Pos, Elems: []ast.Expr{first}}
	for {
		if _, ok := p.accept(token.COMMA); !ok {
			break
		}
		lit.Elems = append(lit.Elems, p.expr())
	}
	p.expect(token.RBRACKET, "to close array literal")
	return lit
}

func parseInt(s string) (int64, error) {
	var v int64
	for i := 0; i < len(s); i++ {
		d := int64(s[i] - '0')
		if v > (1<<63-1-d)/10 {
			return 0, fmt.Errorf("overflows int")
		}
		v = v*10 + d
	}
	return v, nil
}

func parseReal(s string) (float64, error) {
	var v float64
	_, err := fmt.Sscanf(s, "%g", &v)
	return v, err
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
