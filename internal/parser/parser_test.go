package parser

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/token"
	"repro/internal/types"
)

// rt parses src and returns the pretty-printed form, failing on error.
func rt(t *testing.T, src string) string {
	t.Helper()
	prog, err := Parse("test.ttr", src)
	if err != nil {
		t.Fatalf("parse error: %v\nsource:\n%s", err, src)
	}
	return ast.Print(prog)
}

// TestRoundTripCorpus checks parse→print→parse→print is a fixpoint for a
// corpus covering every construct.
func TestRoundTripCorpus(t *testing.T) {
	corpus := []string{
		"def main():\n    pass\n",
		"def f(x int) int:\n    return x * 2\n",
		"def f(x int, y real, s string, b bool) real:\n    return y\n",
		"def f(a [int], m [[real]]) [string]:\n    return [\"x\"]\n",
		"def main():\n    x = 1\n    y = 2.5\n    s = \"hi\"\n    b = true\n    c = false\n",
		"def main():\n    x = 1 + 2 * 3 - 4 / 5 % 6\n",
		"def main():\n    x = (1 + 2) * 3\n",
		"def main():\n    b = 1 < 2 and 3 >= 4 or not (5 == 6)\n",
		"def main():\n    x = -5\n    y = - -5\n",
		"def main():\n    a = [1, 2, 3]\n    r = [1 .. 100]\n    n = a[0] + r[99]\n",
		"def main():\n    a = [1, 2]\n    a[0] = 10\n    a[1] += 5\n",
		"def main():\n    x = 1\n    x += 1\n    x -= 2\n    x *= 3\n    x /= 4\n    x %= 5\n",
		"def main():\n    if true:\n        pass\n",
		"def main():\n    if 1 < 2:\n        x = 1\n    else:\n        x = 2\n",
		"def main():\n    if 1 < 2:\n        x = 1\n    elif 2 < 3:\n        x = 2\n    elif 3 < 4:\n        x = 3\n    else:\n        x = 4\n",
		"def main():\n    while true:\n        break\n",
		"def main():\n    i = 0\n    while i < 10:\n        i += 1\n        continue\n",
		"def main():\n    for x in [1 .. 5]:\n        print(x)\n",
		"def main():\n    parallel for x in [1 .. 5]:\n        print(x)\n",
		"def main():\n    parallel:\n        print(1)\n        print(2)\n",
		"def main():\n    background:\n        print(1)\n",
		"def main():\n    lock m:\n        print(1)\n",
		"def f() int:\n    return 1\n\ndef main():\n    print(f())\n",
		"def f(x int) int:\n    return x\n\ndef main():\n    print(f(1), f(2))\n",
		"def main():\n    s = \"a\" + \"b\"\n    print(s)\n",
		"def main():\n    print()\n",
		"def main():\n    return\n",
		"def main():\n    x = len([1, 2]) / 2\n",
		"def main():\n    m = [[1, 2], [3, 4]]\n    print(m[1][0])\n",
	}
	for _, src := range corpus {
		p1 := rt(t, src)
		p2 := rt(t, p1)
		if p1 != p2 {
			t.Errorf("round trip not a fixpoint.\nfirst:\n%s\nsecond:\n%s", p1, p2)
		}
	}
}

func TestParseFigure1(t *testing.T) {
	src := `# a simple factorial function
def fact(x int) int:
    if x == 0:
        return 1
    else:
        return x * fact(x - 1)

# a main function which handles I/O
def main():
    print("enter n: ")
    n = read_int()
    print(n, "! = ", fact(n))
`
	prog, err := Parse("fig1.ttr", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("got %d functions, want 2", len(prog.Funcs))
	}
	fact := prog.Funcs[0]
	if fact.Name != "fact" || len(fact.Params) != 1 || fact.Params[0].Name != "x" {
		t.Errorf("fact signature wrong: %+v", fact)
	}
	if !types.Equal(fact.Result, types.IntType) || !types.Equal(fact.Params[0].Type, types.IntType) {
		t.Errorf("fact types wrong")
	}
	ifStmt, ok := fact.Body.Stmts[0].(*ast.IfStmt)
	if !ok {
		t.Fatalf("fact body[0] is %T", fact.Body.Stmts[0])
	}
	if _, ok := ifStmt.Then.Stmts[0].(*ast.ReturnStmt); !ok {
		t.Errorf("then branch is %T", ifStmt.Then.Stmts[0])
	}
}

func TestParseParallelConstructs(t *testing.T) {
	src := `def main():
    parallel:
        a = 1
        b = 2
    background:
        c = 3
    parallel for x in [1 .. 3]:
        print(x)
    lock counter:
        d = 4
`
	prog, err := Parse("p.ttr", src)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Funcs[0].Body.Stmts
	if len(body) != 4 {
		t.Fatalf("got %d statements", len(body))
	}
	par, ok := body[0].(*ast.ParallelStmt)
	if !ok || len(par.Body.Stmts) != 2 {
		t.Errorf("parallel block wrong: %T", body[0])
	}
	if _, ok := body[1].(*ast.BackgroundStmt); !ok {
		t.Errorf("background block wrong: %T", body[1])
	}
	pf, ok := body[2].(*ast.ParallelForStmt)
	if !ok || pf.Var.Name != "x" {
		t.Errorf("parallel for wrong: %T", body[2])
	}
	lk, ok := body[3].(*ast.LockStmt)
	if !ok || lk.Name != "counter" {
		t.Errorf("lock block wrong: %T", body[3])
	}
}

func TestElifDesugaring(t *testing.T) {
	src := "def main():\n    if a:\n        pass\n    elif b:\n        pass\n    else:\n        pass\n"
	prog, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	outer := prog.Funcs[0].Body.Stmts[0].(*ast.IfStmt)
	if outer.Else == nil || len(outer.Else.Stmts) != 1 {
		t.Fatal("elif not desugared into else")
	}
	inner, ok := outer.Else.Stmts[0].(*ast.IfStmt)
	if !ok {
		t.Fatalf("else holds %T", outer.Else.Stmts[0])
	}
	if inner.Else == nil {
		t.Error("final else missing")
	}
}

func TestPrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{"x = 1 + 2 * 3", "x = 1 + 2 * 3"},
		{"x = (1 + 2) * 3", "x = (1 + 2) * 3"},
		{"x = 1 - 2 - 3", "x = 1 - 2 - 3"},
		{"x = 1 - (2 - 3)", "x = 1 - (2 - 3)"},
		{"b = not p and q", "b = not p and q"},
		{"b = not (p and q)", "b = not (p and q)"},
		{"b = (a < b) == true", "b = (a < b) == true"}, // comparison is non-associative; parens required and preserved
		{"x = -a * b", "x = -a * b"},
		{"x = -(a * b)", "x = -(a * b)"},
		{"x = a[i] + f(j)", "x = a[i] + f(j)"},
	}
	for _, c := range cases {
		src := "def main():\n    " + c.src + "\n"
		got := rt(t, src)
		wantLine := "    " + c.want
		if !strings.Contains(got, wantLine+"\n") {
			t.Errorf("%q printed as:\n%s\nwant line %q", c.src, got, wantLine)
		}
	}
}

func TestComparisonNotChained(t *testing.T) {
	// a < b < c must be a syntax error (comparison is non-associative),
	// and the error must say so rather than complain about the third
	// operand.
	_, err := Parse("t", "def main():\n    x = 10 > 2 > 1\n")
	if err == nil {
		t.Fatal("chained comparison accepted")
	}
	if !strings.Contains(err.Error(), "chained comparisons") {
		t.Errorf("error %q does not mention chained comparisons", err)
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	// Position should point at the second relop, not the end of line.
	if perr.Pos.Line != 2 || perr.Pos.Col < 14 || perr.Pos.Col > 16 {
		t.Errorf("error position = %v, want line 2 near the second >", perr.Pos)
	}
}

func TestSliceExpressionDiagnostic(t *testing.T) {
	// Python users will try a[0:2]; name the missing feature instead of a
	// generic "expected ]".
	_, err := Parse("t", "def main():\n    a = [1, 2, 3]\n    print(a[0:2])\n")
	if err == nil {
		t.Fatal("slice expression accepted")
	}
	if !strings.Contains(err.Error(), "slice expressions") {
		t.Errorf("error %q does not mention slice expressions", err)
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if perr.Pos.Line != 3 {
		t.Errorf("error position = %v, want line 3", perr.Pos)
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []struct {
		src    string
		substr string
	}{
		{"x = 1\n", "expected function definition"},
		{"def main():\nx = 1\n", "expected INDENT"},
		{"def main(:\n    pass\n", "parameter name"},
		{"def main(x):\n    pass\n", "expected a type"},
		{"def main()\n    pass\n", "expected :"},
		{"def main():\n    x = \n", "expected an expression"},
		{"def main():\n    1 + 2 = x\n", "invalid assignment target"},
		{"def main():\n    f(1(2)\n", "only named functions can be called"},
		{"def main():\n    def g():\n        pass\n", "nested function"},
		{"def main():\n    return 1 2\n", "expected NEWLINE"},
		{"def main():\n    x = [1, 2\n", "to close array literal"},
		{"def main():\n    lock :\n        pass\n", "lock name"},
		{"def main():\n    a = [1, 2]\n    x = a[0:1]\n", "slice expressions"},
		{"def main():\n    x = 1 < 2 <= 3\n", "chained comparisons"},
		{"def main():\n    x = (1 + 2\n", "expected )"},
	}
	for _, c := range cases {
		_, err := Parse("t", c.src)
		if err == nil {
			t.Errorf("parse %q: expected error containing %q", c.src, c.substr)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("parse %q: error %q does not contain %q", c.src, err, c.substr)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("file.ttr", "def main():\n    x = [1, 2\n")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if perr.Pos.File != "file.ttr" || perr.Pos.Line < 2 {
		t.Errorf("error position = %v", perr.Pos)
	}
}

func TestIntLiteralOverflow(t *testing.T) {
	_, err := Parse("t", "def main():\n    x = 99999999999999999999\n")
	if err == nil {
		t.Error("overflowing int literal accepted")
	}
}

func TestEmptyProgram(t *testing.T) {
	prog, err := Parse("t", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 0 {
		t.Errorf("got %d funcs", len(prog.Funcs))
	}
	prog, err = Parse("t", "# only a comment\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 0 {
		t.Errorf("comment-only: got %d funcs", len(prog.Funcs))
	}
}

// --- randomized round-trip property ---

// progGen builds random but well-formed Tetra programs directly as ASTs,
// prints them, and checks parse(print(p)) prints identically. This
// exercises printer/parser agreement over a much larger space than the
// fixed corpus.
type progGen struct {
	r     *rand.Rand
	depth int
}

func (g *progGen) expr() ast.Expr {
	g.depth++
	defer func() { g.depth-- }()
	if g.depth > 4 {
		return g.leaf()
	}
	switch g.r.Intn(8) {
	case 0, 1, 2:
		return g.leaf()
	case 3:
		ops := []token.Kind{token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT}
		return &ast.BinaryExpr{Op: ops[g.r.Intn(len(ops))], X: g.expr(), Y: g.expr()}
	case 4:
		ops := []token.Kind{token.EQ, token.NE, token.LT, token.LE, token.GT, token.GE}
		return &ast.BinaryExpr{Op: ops[g.r.Intn(len(ops))], X: g.leaf(), Y: g.leaf()}
	case 5:
		return &ast.UnaryExpr{Op: token.MINUS, X: g.expr()}
	case 6:
		n := g.r.Intn(3) + 1
		elems := make([]ast.Expr, n)
		for i := range elems {
			elems[i] = g.leaf()
		}
		return &ast.ArrayLit{Elems: elems}
	default:
		return &ast.IndexExpr{X: &ast.Ident{Name: "a"}, Index: g.leaf()}
	}
}

func (g *progGen) leaf() ast.Expr {
	switch g.r.Intn(5) {
	case 0:
		return &ast.IntLit{Value: int64(g.r.Intn(1000))}
	case 1:
		return &ast.RealLit{Value: 1.5, Text: "1.5"}
	case 2:
		return &ast.StringLit{Value: "s"}
	case 3:
		return &ast.BoolLit{Value: g.r.Intn(2) == 0}
	default:
		return &ast.Ident{Name: string(rune('a' + g.r.Intn(4)))}
	}
}

func (g *progGen) boolExpr() ast.Expr {
	ops := []token.Kind{token.EQ, token.NE, token.LT, token.LE, token.GT, token.GE}
	cmp := func() ast.Expr {
		return &ast.BinaryExpr{Op: ops[g.r.Intn(len(ops))], X: g.leaf(), Y: g.leaf()}
	}
	switch g.r.Intn(4) {
	case 0:
		return &ast.BinaryExpr{Op: token.AND, X: cmp(), Y: cmp()}
	case 1:
		return &ast.BinaryExpr{Op: token.OR, X: cmp(), Y: cmp()}
	case 2:
		return &ast.UnaryExpr{Op: token.NOT, X: cmp()}
	default:
		return cmp()
	}
}

func (g *progGen) stmt(depth int) ast.Stmt {
	if depth > 2 {
		return &ast.AssignStmt{Target: &ast.Ident{Name: "x"}, Op: token.ASSIGN, Value: g.expr()}
	}
	switch g.r.Intn(10) {
	case 0:
		return &ast.IfStmt{Cond: g.boolExpr(), Then: g.block(depth + 1)}
	case 1:
		return &ast.IfStmt{Cond: g.boolExpr(), Then: g.block(depth + 1), Else: g.block(depth + 1)}
	case 2:
		return &ast.WhileStmt{Cond: g.boolExpr(), Body: g.block(depth + 1)}
	case 3:
		return &ast.ForStmt{Var: &ast.Ident{Name: "i"}, Seq: g.expr(), Body: g.block(depth + 1)}
	case 4:
		return &ast.ParallelStmt{Body: g.block(depth + 1)}
	case 5:
		return &ast.ParallelForStmt{Var: &ast.Ident{Name: "i"}, Seq: g.expr(), Body: g.block(depth + 1)}
	case 6:
		return &ast.LockStmt{Name: "m", Body: g.block(depth + 1)}
	case 7:
		ops := []token.Kind{token.ASSIGN, token.PLUSASSIGN, token.MINUSASSIGN, token.STARASSIGN}
		return &ast.AssignStmt{Target: &ast.Ident{Name: "x"}, Op: ops[g.r.Intn(len(ops))], Value: g.expr()}
	case 8:
		return &ast.ExprStmt{X: &ast.CallExpr{Fun: &ast.Ident{Name: "print"}, Args: []ast.Expr{g.expr()}}}
	default:
		return &ast.PassStmt{}
	}
}

func (g *progGen) block(depth int) *ast.Block {
	n := g.r.Intn(3) + 1
	b := &ast.Block{}
	for i := 0; i < n; i++ {
		b.Stmts = append(b.Stmts, g.stmt(depth))
	}
	return b
}

func TestRoundTripRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(12345))
	for i := 0; i < 300; i++ {
		g := &progGen{r: r}
		prog := &ast.Program{Funcs: []*ast.FuncDecl{{
			Name: "main",
			Body: g.block(0),
		}}}
		printed := ast.Print(prog)
		reparsed, err := Parse("gen.ttr", printed)
		if err != nil {
			t.Fatalf("generated program failed to parse: %v\n%s", err, printed)
		}
		printed2 := ast.Print(reparsed)
		if printed != printed2 {
			t.Fatalf("round trip mismatch (iteration %d):\n--- first ---\n%s\n--- second ---\n%s", i, printed, printed2)
		}
	}
}
