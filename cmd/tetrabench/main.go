// Command tetrabench regenerates the paper's evaluation (§IV) and the
// reproduction's ablation tables. See DESIGN.md §4 for the experiment index
// and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	tetrabench [-exp primes|tsp|ablation|limits|scaling|all] [flags]
//
// Experiments:
//
//	primes    E1: speedup counting primes below -limit, workers ∈ -workers
//	tsp       E2: speedup solving an exact -n city TSP, workers ∈ -workers
//	ablation  A1: interpreter vs bytecode VM vs native Go, sequential
//	limits    G1: resource-governor overhead on the hot path (no governor
//	          vs generous non-tripping budgets, both backends)
//	scaling   S1: chunked-scheduler scaling on per-element parallel-for
//	          workloads (parallelsum/mandelbrot/primes), workers ∈ -workers;
//	          writes the JSON report to -out (default BENCH_scaling.json)
//	opt       O1: bytecode-optimizer ablation (VM at -O0/-O1/-O2 on
//	          interpretation-bound workloads) plus the compile-cache
//	          cold-vs-warm delta; writes BENCH_opt.json
//	serve     SV1: tetrad execution-service throughput and latency at
//	          admission caps of 1/4/8 in-flight executions, warm cache,
//	          both backends; writes BENCH_serve.json
//	isolate   ISO1: crash-isolation cost — the same workload on the
//	          in-process tier vs supervised worker processes, plus the
//	          worker tier under injected crashes (SIGKILL mid-run);
//	          writes BENCH_isolate.json
//	tiered    T1: execution-tier crossover — the same loop-bound
//	          workloads on the interpreter, the warm bytecode VM and a
//	          promoted gogen-compiled native artifact, outputs compared
//	          byte-for-byte; writes BENCH_tiered.json
//	vmreg     R1: register-IR rewrite — arithmetic-loop ns/iter on the
//	          register VM vs the retired stack VM's committed numbers,
//	          plus a per-superinstruction win breakdown via fusion masks
//	          and an inline-cached call loop; writes BENCH_vmreg.json
//	session   SE1: streaming debug sessions — full-lifecycle latency
//	          (create → terminal SSE frame), step-command round trips,
//	          trace-frame throughput through the capped ring, and
//	          concurrent streamed sessions; writes BENCH_session.json
//	cluster   CL1: cache-affinity routing across tetrad replicas —
//	          router + N tetrads on loopback under zipfian program
//	          popularity, affinity vs random at N=1/2/4 (throughput,
//	          latency, per-node cache hit rate), plus node-kill and
//	          drain-mid-load phases; writes BENCH_cluster.json
//	all       everything except limits and scaling (default)
//
// Each speedup experiment prints the wall-clock table (meaningful on a
// multicore host) and the simulated-multicore table (the 1-core
// substitution documented in DESIGN.md §3.5), plus the paper's reference
// numbers for comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/worker"
)

func main() {
	// The isolate experiment's worker pool re-execs this binary as its
	// workers; divert into the worker loop before anything else runs.
	worker.ExitIfWorker()
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "experiment: primes, tsp, ablation, limits, scaling, opt, sem, vmreg, serve, isolate, tiered, session, cluster, or all")
	limit := flag.Int("limit", 200000, "E1: count primes below this limit")
	fullScale := flag.Bool("paper-scale", false, "E1: use the paper's full workload (first million primes ⇒ limit 15485864); slow on the interpreter")
	n := flag.Int("n", 10, "E2: number of TSP cities")
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated worker counts")
	reps := flag.Int("reps", 1, "wall-clock repetitions per point (best-of)")
	quick := flag.Bool("quick", false, "S1: shrink the scaling workloads for CI")
	out := flag.String("out", "BENCH_scaling.json", "S1: path for the scaling JSON report")
	flag.Parse()

	if *fullScale {
		*limit = 15485864 // π(15485864) = 1e6: the millionth prime is 15485863
	}
	workers, err := parseInts(*workersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	fmt.Printf("host: GOMAXPROCS=%d (paper testbed: 8 cores)\n\n", runtime.GOMAXPROCS(0))

	switch *exp {
	case "primes":
		return primes(*limit, workers, *reps)
	case "tsp":
		return tsp(*n, workers, *reps)
	case "ablation":
		return ablation(*limit, *n)
	case "limits":
		return limitsOverhead(*limit, *n, *reps)
	case "scaling":
		return scaling(*quick, workers, *reps, *out)
	case "opt":
		outPath := *out
		if outPath == "BENCH_scaling.json" {
			outPath = "BENCH_opt.json"
		}
		return opt(*quick, *reps, outPath)
	case "sem":
		outPath := *out
		if outPath == "BENCH_scaling.json" {
			outPath = "BENCH_sem.json"
		}
		return semOverhead(*quick, *reps, outPath)
	case "vmreg":
		outPath := *out
		if outPath == "BENCH_scaling.json" {
			outPath = "BENCH_vmreg.json"
		}
		return vmreg(*quick, *reps, outPath)
	case "serve":
		outPath := *out
		if outPath == "BENCH_scaling.json" {
			outPath = "BENCH_serve.json"
		}
		return serve(*quick, *reps, outPath)
	case "isolate":
		outPath := *out
		if outPath == "BENCH_scaling.json" {
			outPath = "BENCH_isolate.json"
		}
		return isolate(*quick, *reps, outPath)
	case "tiered":
		outPath := *out
		if outPath == "BENCH_scaling.json" {
			outPath = "BENCH_tiered.json"
		}
		return tiered(*quick, *reps, outPath)
	case "session":
		outPath := *out
		if outPath == "BENCH_scaling.json" {
			outPath = "BENCH_session.json"
		}
		return sessionExp(*quick, *reps, outPath)
	case "cluster":
		outPath := *out
		if outPath == "BENCH_scaling.json" {
			outPath = "BENCH_cluster.json"
		}
		return cluster(*quick, *reps, outPath)
	case "all":
		if rc := primes(*limit, workers, *reps); rc != 0 {
			return rc
		}
		fmt.Println()
		if rc := tsp(*n, workers, *reps); rc != 0 {
			return rc
		}
		fmt.Println()
		return ablation(*limit, *n)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		return 2
	}
}

func primes(limit int, workers []int, reps int) int {
	mk := func(w int) string { return bench.PrimesSource(limit, w) }
	title := fmt.Sprintf("E1: primes below %d (paper: first million primes, ~5x speedup @ 8 cores)", limit)
	return speedupExperiment("primes", title, mk, workers, reps)
}

func tsp(n int, workers []int, reps int) int {
	mk := func(w int) string { return bench.TSPSource(n, w) }
	title := fmt.Sprintf("E2: exact TSP, %d cities (paper: ~5x speedup @ 8 cores, 62.5%% efficiency)", n)
	return speedupExperiment("tsp", title, mk, workers, reps)
}

func speedupExperiment(name, title string, mk func(int) string, workers []int, reps int) int {
	fmt.Println(title)

	rows, err := bench.Speedup(name, mk, workers, reps, bench.Interp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(bench.FormatTable("  measured wall-clock (interpreter):", rows))

	sim, err := bench.SimSpeedup(name, mk, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(bench.FormatSimTable("  simulated multicore (work-count model, E3 efficiency):", sim))
	if len(sim) > 0 {
		last := sim[len(sim)-1]
		fmt.Printf("  paper @ 8 cores: 5.00x / 62.5%%   reproduced @ %d cores: %.2fx / %.1f%%\n",
			last.Cores, last.Speedup, 100*last.Efficiency)
	}
	return 0
}

func ablation(limit, n int) int {
	fmt.Println("A1: backend ablation (sequential workloads, 1 worker)")
	fmt.Println("  workload  backend       time        output")

	type runner struct {
		workload, backend string
		run               func() (string, time.Duration, error)
	}
	primesSrc := bench.PrimesSource(limit, 1)
	tspSrc := bench.TSPSource(n, 1)
	rs := []runner{
		{"primes", "interp", func() (string, time.Duration, error) {
			r, err := bench.RunOnce("primes.ttr", primesSrc, bench.Interp)
			return r.Output, r.Elapsed, err
		}},
		{"primes", "vm", func() (string, time.Duration, error) {
			r, err := bench.RunOnce("primes.ttr", primesSrc, bench.VM)
			return r.Output, r.Elapsed, err
		}},
		{"primes", "native-go", func() (string, time.Duration, error) {
			start := time.Now()
			c := bench.PrimesNative(limit, 1)
			return strconv.Itoa(c), time.Since(start), nil
		}},
		{"tsp", "interp", func() (string, time.Duration, error) {
			r, err := bench.RunOnce("tsp.ttr", tspSrc, bench.Interp)
			return r.Output, r.Elapsed, err
		}},
		{"tsp", "vm", func() (string, time.Duration, error) {
			r, err := bench.RunOnce("tsp.ttr", tspSrc, bench.VM)
			return r.Output, r.Elapsed, err
		}},
		{"tsp", "native-go", func() (string, time.Duration, error) {
			start := time.Now()
			best := bench.TSPNative(n, 1)
			return fmt.Sprintf("%.0f", best), time.Since(start), nil
		}},
	}
	if bench.HaveToolchain() {
		// The full future-work pipeline: Tetra → Go source → native binary.
		for _, wl := range []struct{ name, src string }{
			{"primes", primesSrc}, {"tsp", tspSrc},
		} {
			wl := wl
			rs = append(rs, runner{wl.name, "compiled", func() (string, time.Duration, error) {
				bin, cleanup, err := bench.BuildCompiled(wl.name+".ttr", wl.src)
				if err != nil {
					return "", 0, err
				}
				defer cleanup()
				r, err := bench.RunBinary(bin, "")
				return r.Output, r.Elapsed, err
			}})
		}
	}
	for _, r := range rs {
		out, d, err := r.run()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("  %-9s %-10s %12s  %s\n", r.workload, r.backend, d.Round(time.Microsecond), out)
	}
	fmt.Println("  (the gap illustrates the paper's stance: Tetra trades raw speed for simplicity;")
	fmt.Println("   vm is the bytecode path, compiled is the future-work Tetra→Go→binary pipeline,")
	fmt.Println("   native-go is hand-written Go as the lower bound)")
	return 0
}

func scaling(quick bool, workers []int, reps int, outPath string) int {
	fmt.Println("S1: chunked-scheduler scaling (per-element parallel-for, bounded worker pool)")
	rep, err := bench.Scaling(quick, workers, reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(bench.FormatScalingTable(rep))
	if err := bench.WriteScalingJSON(outPath, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("\nwrote %s (speedup column is the simulated-multicore model of DESIGN.md §3.5;\n", outPath)
	fmt.Println("wall-clock speedup requires a multicore host)")
	return 0
}

func opt(quick bool, reps int, outPath string) int {
	fmt.Println("O1: bytecode optimizer ablation (VM at O0/O1/O2) and compile-cache hit cost")
	rep, err := bench.Opt(quick, reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(bench.FormatOptTable(rep))
	if err := bench.WriteOptJSON(outPath, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("\nwrote %s\n", outPath)
	return 0
}

func semOverhead(quick bool, reps int, outPath string) int {
	fmt.Println("SEM: shared-semantics-core indirection cost on the hot binary-op path")
	rep, err := bench.Sem(quick, reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	bench.PrintSemReport(rep)
	if err := bench.WriteSemJSON(outPath, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("\nwrote %s\n", outPath)
	return 0
}

func vmreg(quick bool, reps int, outPath string) int {
	fmt.Println("R1: register-IR rewrite — register VM vs retired stack VM, superinstruction breakdown")
	rep, err := bench.VMReg(quick, reps, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(bench.FormatVMRegTable(rep))
	if err := bench.WriteVMRegJSON(outPath, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("\nwrote %s\n", outPath)
	return 0
}

func serve(quick bool, reps int, outPath string) int {
	fmt.Println("SV1: tetrad execution service — throughput/latency vs in-flight cap (warm cache)")
	rep, err := bench.ServeExperiment(quick, reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(bench.FormatServeTable(rep))
	if err := bench.WriteServeJSON(outPath, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("\nwrote %s\n", outPath)
	return 0
}

func sessionExp(quick bool, reps int, outPath string) int {
	fmt.Println("SE1: streaming debug sessions — lifecycle latency, step round trips,")
	fmt.Println("     trace-frame throughput through the capped ring, concurrent streams")
	rep, err := bench.SessionExperiment(quick, reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(bench.FormatSessionTable(rep))
	if err := bench.WriteSessionJSON(outPath, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("\nwrote %s\n", outPath)
	return 0
}

func cluster(quick bool, reps int, outPath string) int {
	fmt.Println("CL1: cache-affinity routing — router + N tetrads, zipfian program popularity,")
	fmt.Println("     affinity vs random at N=1/2/4, plus node-kill and drain-mid-load phases")
	rep, err := bench.ClusterExperiment(quick, reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(bench.FormatClusterTable(rep))
	if err := bench.WriteClusterJSON(outPath, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("\nwrote %s\n", outPath)
	return 0
}

func isolate(quick bool, reps int, outPath string) int {
	fmt.Println("ISO1: crash-isolation cost — in-process vs supervised workers, plus the worker")
	fmt.Println("      tier under injected crashes (a fraction of attempts SIGKILLed mid-run)")
	rep, err := bench.IsolateExperiment(quick, reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(bench.FormatIsolateTable(rep))
	if err := bench.WriteIsolateJSON(outPath, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("\nwrote %s\n", outPath)
	return 0
}

func tiered(quick bool, reps int, outPath string) int {
	fmt.Println("T1: execution-tier crossover — interp vs warm VM vs promoted native artifact")
	rep, err := bench.TieredExperiment(quick, reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(bench.FormatTieredTable(rep))
	if err := bench.WriteTieredJSON(outPath, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("\nwrote %s\n", outPath)
	return 0
}

func limitsOverhead(limit, n, reps int) int {
	fmt.Println("G1: resource-governor overhead (no limits vs generous non-tripping budgets)")
	fmt.Println("  workload  backend      no-governor      governed   overhead")
	if reps < 3 {
		reps = 3
	}
	for _, wl := range []struct{ name, src string }{
		{"primes", bench.PrimesSource(limit, 1)},
		{"tsp", bench.TSPSource(n, 1)},
	} {
		for _, backend := range []bench.Backend{bench.Interp, bench.VM} {
			base, guarded, err := bench.LimitsOverhead(wl.name+".ttr", wl.src, backend, reps)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			overhead := 100 * (float64(guarded)/float64(base) - 1)
			fmt.Printf("  %-9s %-10s %12s  %12s  %+8.1f%%\n",
				wl.name, backend, base.Round(time.Microsecond), guarded.Round(time.Microsecond), overhead)
		}
	}
	fmt.Println("  (governed = deadline + step budget armed but never tripping; the delta is the")
	fmt.Println("   per-step fuel-counter check. If it grows past a few %, batch the counter.)")
	return 0
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no worker counts given")
	}
	return out, nil
}
