// Command tetracompile compiles a Tetra program to Go source — the
// reproduction of the paper's future-work native compiler (§VI), targeting
// Go+goroutines where the paper suggested C+Pthreads.
//
// Usage:
//
//	tetracompile program.ttr            # writes program.go next to the input
//	tetracompile -o out.go program.ttr
//	tetracompile -stdout program.ttr    # print the generated source
//
// The generated file is a main package that imports repro/internal/gort;
// build it from within this module:
//
//	tetracompile prog.ttr && go run prog.go
//
// The implementation lives in internal/cli so it can be tested as a
// library.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.CompileMain(os.Args[1:], os.Stdout, os.Stderr))
}
