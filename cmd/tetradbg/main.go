// Command tetradbg is Tetra's parallel debugger — the terminal stand-in for
// the paper's Qt IDE (§III). Each Tetra thread has its own cursor; threads
// are stepped independently, which is how students are meant to provoke and
// observe race conditions and deadlocks.
//
// Usage:
//
//	tetradbg program.ttr               # interactive session (stops on entry)
//	tetradbg -script cmds program.ttr  # run a command script (for CI/tests)
//
// Commands:
//
//	threads              show every thread, its position and next statement
//	step <t>             run one statement on thread <t> (steps into calls)
//	next <t>             run one statement on thread <t>, stepping over calls
//	continue <t>         let thread <t> run freely
//	pause <t>            park thread <t> at its next statement
//	vars <t>             show the variables of thread <t>'s frame
//	break <line>         set a breakpoint on a source line
//	clear <line>         remove a breakpoint
//	breaks               list breakpoints
//	run                  resume all threads
//	stop                 pause all threads
//	wait [<t>]           wait until thread <t> (or any thread) pauses
//	list                 print the program source with breakpoints marked
//	quit                 end the session
//
// The implementation lives in internal/cli so it can be tested as a
// library.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.DebugMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
