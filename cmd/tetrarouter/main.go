// Command tetrarouter is the cache-affinity front router for a fleet of
// tetrad replicas. Each request's program content-hash — derived with the
// same (source, opt level, IRVersion) key the compile cache uses — is
// consistent-hashed onto the ring of healthy replicas, so every program's
// traffic lands on one node and each node serves a warm cache shard
// instead of every node serving a cold union.
//
// Usage:
//
//	tetrarouter -backends url[=weight],... [flags]
//
// Endpoints (the tetrad surface, proxied):
//
//	POST /run            routed by program content-hash (affinity) or
//	                     uniformly (random); replies carry X-Tetra-Backend
//	POST /session        routed like /run; the session's backend is
//	                     pinned for the session's lifetime
//	     /session/{id}/* sticky to the replica that owns the session
//	GET  /metrics        the router's own counters: proxied, retries,
//	                     spillovers, membership churn, per-backend latency
//	GET  /healthz/live   200 while the router serves HTTP
//	GET  /healthz/ready  200 iff not draining and at least one backend is
//	                     in the ring (alias /healthz)
//
// Flags:
//
//	-addr           listen address (default :8700)
//	-backends       comma-separated tetrad base URLs, each url[=weight]
//	-policy         "affinity" (default) or "random"
//	-vnodes         virtual nodes per unit of backend weight
//	-probe-interval backend readiness poll interval (default 250ms)
//	-max-inflight   per-backend proxy bound before spillover (default 128)
//	-retries        connection-failure retries across ring nodes (default 2)
//	-drain-grace    shutdown wait for in-flight proxies (default 10s)
//
// Membership is health-driven: each backend's /healthz/ready is polled
// every probe interval, and a replica that begins a drain (readiness 503
// while admissions stay open for the announce window) leaves the ring
// before it stops accepting — no request is lost to a node that said it
// was leaving. A replica that dies without announcing costs a bounded
// retry on the next ring node, not a client-visible error.
//
// The implementation lives in internal/router and internal/cli so it can
// be tested as a library.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.RouterMain(os.Args[1:], os.Stdout, os.Stderr))
}
