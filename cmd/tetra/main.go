// Command tetra runs Tetra programs from the command line — the
// reproduction of the paper's "command line driver program for [the
// interpreter] which simply calls the interpreter on its argument from
// start to finish" (§IV), extended with the tooling flags the IDE exposes:
// trace visualization, race detection, and deadlock analysis.
//
// Usage:
//
//	tetra [flags] program.ttr
//
// Flags:
//
//	-check       parse and type-check only
//	-ast         print the parsed program (pretty-printed source)
//	-trace       record execution and print a per-thread ASCII timeline
//	-race        record shared-variable accesses and report lockset races
//	-deadlock    analyze the trace's lock events for contention/deadlock
//	-vm          execute on the bytecode VM instead of the AST interpreter
//	-disasm      print the compiled bytecode and exit
//	-O           bytecode optimization level for -vm/-disasm (0 none,
//	             1 fold/thread/DCE, 2 adds peephole fusion; default 2)
//	-no-detect   disable live deadlock detection (hangs become real hangs)
//	-timeline N  cap timeline rows (default 200, 0 = unlimited)
//
// Resource limits for running untrusted programs (zero value = unlimited):
//
//	-timeout D      wall-clock budget (e.g. 1s, 500ms)
//	-max-steps N    statement/instruction budget
//	-max-threads N  live Tetra thread budget
//	-max-output N   stdout byte budget
//	-max-alloc N    allocation budget (array cells + string bytes)
//	-sandbox        apply all of the above with teaching-sized defaults
//
// The implementation lives in internal/cli so it can be tested as a
// library.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Main(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
