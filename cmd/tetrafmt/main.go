// Command tetrafmt formats Tetra source code canonically, in the spirit of
// gofmt: 4-space indentation, normalized spacing around operators, minimal
// parentheses. Formatting is parse → pretty-print over the same printer
// the round-trip tests verify, so the output is always a program with the
// identical syntax tree.
//
// Usage:
//
//	tetrafmt program.ttr          # print formatted source to stdout
//	tetrafmt -w program.ttr ...   # rewrite files in place
//	tetrafmt -l *.ttr             # list files that are not canonical
//
// Note: comments are not preserved (the AST does not carry them) — a
// divergence from gofmt worth knowing before using -w on commented files.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.FormatMain(os.Args[1:], os.Stdout, os.Stderr))
}
