// Command tetrad is the sandboxed Tetra execution service: the paper's
// IDE workload — run untrusted student programs on demand (§III) — served
// over HTTP at production scale.
//
// Usage:
//
//	tetrad [flags]
//
// Endpoints:
//
//	POST /run      execute one program: {"source": "...", "stdin": "...",
//	               "backend": "interp"|"vm", "opt": 0|1|2,
//	               "limits": {...}, "trace": bool, "race": bool}
//	GET  /metrics  cache hit rate, in-flight, queue depth, latency
//	               histograms, rejection counters
//	GET  /healthz  load-balancer probe (503 while draining)
//
// Flags:
//
//	-addr          listen address (default :8714)
//	-max-inflight  concurrent execution cap (default 2×GOMAXPROCS)
//	-max-queue     admission queue bound (default 4×max-inflight)
//	-queue-timeout max queue wait before 429 (default 1s)
//	-drain-grace   shutdown grace before in-flight runs are cancelled
//	-cache-entries compile cache capacity
//
// Ceiling flags (-timeout, -max-steps, -max-threads, -max-output,
// -max-alloc) set the server-wide resource ceiling; unset fields take the
// sandbox defaults. Per-request limits are clamped by this ceiling: a
// client can tighten its own budget but never raise it.
//
// SIGINT/SIGTERM drains gracefully: admissions stop, in-flight executions
// get the grace period, stragglers are cancelled through the resource
// governor — which wakes even lock-parked programs.
//
// The implementation lives in internal/server and internal/cli so it can
// be tested as a library.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.ServeMain(os.Args[1:], os.Stdout, os.Stderr))
}
