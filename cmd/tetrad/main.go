// Command tetrad is the sandboxed Tetra execution service: the paper's
// IDE workload — run untrusted student programs on demand (§III) — served
// over HTTP at production scale.
//
// Usage:
//
//	tetrad [flags]
//
// Endpoints:
//
//	POST /run           execute one program: {"source": "...", "stdin": "...",
//	                    "backend": "interp"|"vm", "opt": 0|1|2,
//	                    "limits": {...}, "trace": bool, "race": bool}
//	GET  /metrics       cache hit rate, in-flight, queue depth, latency
//	                    histograms, rejection counters, worker supervision
//	                    stats and crash forensics
//	GET  /healthz/live  liveness probe (200 while the process serves HTTP)
//	GET  /healthz/ready readiness probe (503 the moment a drain begins);
//	                    the legacy /healthz is an alias
//
// Flags:
//
//	-addr          listen address (default :8714)
//	-max-inflight  concurrent execution cap (default 2×GOMAXPROCS)
//	-max-queue     admission queue bound (default 4×max-inflight)
//	-queue-timeout max queue wait before 429 (default 1s)
//	-drain-grace   shutdown grace before in-flight runs are cancelled
//	-drain-announce readiness-503 window before admissions close
//	-cache-entries compile cache capacity
//
// Isolation flags:
//
//	-isolation     "pool" (default: supervised worker processes) or "off"
//	               (in-process execution; degraded mode)
//	-pool-size     pre-forked workers (default max-inflight)
//	-retry-attempts max execution attempts per request across worker
//	               crashes (default 3)
//	-quarantine-threshold / -quarantine-window / -quarantine-ttl
//	               circuit breaker for programs that repeatedly crash
//	               workers (defaults 3 crashes / 1m window / 5m TTL;
//	               negative threshold disables)
//	-worker        internal: become a pooled execution worker on
//	               stdin/stdout (the supervisor re-execs this binary)
//
// Ceiling flags (-timeout, -max-steps, -max-threads, -max-output,
// -max-alloc) set the server-wide resource ceiling; unset fields take the
// sandbox defaults. Per-request limits are clamped by this ceiling: a
// client can tighten its own budget but never raise it.
//
// With isolation on, each execution runs in a supervised worker process:
// a crash (panic, OOM kill, stuck lock) costs one worker, the request is
// retried on a fresh one, and programs that repeatedly kill workers are
// quarantined (422). SIGINT/SIGTERM drains gracefully: readiness flips
// first, admissions stop, in-flight executions get the grace period,
// stragglers are cancelled through the resource governor — which wakes
// even lock-parked programs — and every worker is killed and reaped.
//
// The implementation lives in internal/server and internal/cli so it can
// be tested as a library.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.ServeMain(os.Args[1:], os.Stdout, os.Stderr))
}
